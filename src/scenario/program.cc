#include "scenario/program.h"

#include <cmath>
#include <string>
#include <unordered_map>
#include <utility>

#include "core/variable.h"
#include "scenario/parser.h"

namespace provabs::scenario {

namespace {

// Hard ceiling on the Cartesian product. The serving tier imposes its own
// (smaller, configurable) limit; this one only guards the arithmetic.
constexpr uint64_t kMaxScenarioFamily = uint64_t{1} << 32;

enum class Type { kNumber, kBool };

const char* TypeName(Type t) { return t == Type::kNumber ? "number" : "bool"; }

/// Type checks `expr` and appends its postfix lowering to `ops`.
class ExprLowerer {
 public:
  ExprLowerer(const std::unordered_map<std::string, uint32_t>& params,
              size_t* error_offset)
      : params_(params), error_offset_(error_offset) {}

  StatusOr<Type> Lower(const Expr& expr, std::vector<Op>* ops) {
    switch (expr.kind) {
      case ExprKind::kNumber: {
        if (!std::isfinite(expr.number)) {
          return Fail(expr.offset, "numeric literal is not finite");
        }
        Op op;
        op.kind = Op::kPushConst;
        op.constant = expr.number;
        ops->push_back(op);
        return Type::kNumber;
      }
      case ExprKind::kParam: {
        auto it = params_.find(expr.param);
        if (it == params_.end()) {
          return Fail(expr.offset, "unknown parameter '" + expr.param +
                                       "' (declare it with LET)");
        }
        Op op;
        op.kind = Op::kPushParam;
        op.param = it->second;
        ops->push_back(op);
        return Type::kNumber;
      }
      case ExprKind::kNeg: {
        auto operand = Lower(*expr.a, ops);
        if (!operand.ok()) return operand;
        if (*operand != Type::kNumber) {
          return Fail(expr.offset, "type error: unary '-' needs a number, got " +
                                       std::string(TypeName(*operand)));
        }
        ops->push_back(Op{Op::kNeg, 0.0, 0});
        return Type::kNumber;
      }
      case ExprKind::kNot: {
        auto operand = Lower(*expr.a, ops);
        if (!operand.ok()) return operand;
        if (*operand != Type::kBool) {
          return Fail(expr.offset, "type error: NOT needs a bool, got " +
                                       std::string(TypeName(*operand)));
        }
        ops->push_back(Op{Op::kNot, 0.0, 0});
        return Type::kBool;
      }
      case ExprKind::kBinary:
        return LowerBinary(expr, ops);
      case ExprKind::kIf: {
        auto cond = Lower(*expr.a, ops);
        if (!cond.ok()) return cond;
        if (*cond != Type::kBool) {
          return Fail(expr.offset, "type error: IF condition must be bool, got " +
                                       std::string(TypeName(*cond)));
        }
        auto then_type = Lower(*expr.b, ops);
        if (!then_type.ok()) return then_type;
        auto else_type = Lower(*expr.c, ops);
        if (!else_type.ok()) return else_type;
        if (*then_type != *else_type) {
          return Fail(expr.offset,
                      "type error: THEN and ELSE branches differ (" +
                          std::string(TypeName(*then_type)) + " vs " +
                          std::string(TypeName(*else_type)) + ")");
        }
        ops->push_back(Op{Op::kSelect, 0.0, 0});
        return *then_type;
      }
    }
    return Fail(expr.offset, "internal: unhandled expression kind");
  }

 private:
  StatusOr<Type> LowerBinary(const Expr& expr, std::vector<Op>* ops) {
    auto lhs = Lower(*expr.a, ops);
    if (!lhs.ok()) return lhs;
    auto rhs = Lower(*expr.b, ops);
    if (!rhs.ok()) return rhs;
    struct Spec {
      Op::Kind op;
      const char* name;
      Type operand, result;
    };
    Spec spec{Op::kAdd, "+", Type::kNumber, Type::kNumber};
    switch (expr.op) {
      case BinaryOp::kAdd: spec = {Op::kAdd, "+", Type::kNumber, Type::kNumber}; break;
      case BinaryOp::kSub: spec = {Op::kSub, "-", Type::kNumber, Type::kNumber}; break;
      case BinaryOp::kMul: spec = {Op::kMul, "*", Type::kNumber, Type::kNumber}; break;
      case BinaryOp::kDiv: spec = {Op::kDiv, "/", Type::kNumber, Type::kNumber}; break;
      case BinaryOp::kLt: spec = {Op::kLt, "<", Type::kNumber, Type::kBool}; break;
      case BinaryOp::kLe: spec = {Op::kLe, "<=", Type::kNumber, Type::kBool}; break;
      case BinaryOp::kGt: spec = {Op::kGt, ">", Type::kNumber, Type::kBool}; break;
      case BinaryOp::kGe: spec = {Op::kGe, ">=", Type::kNumber, Type::kBool}; break;
      case BinaryOp::kEq: spec = {Op::kEq, "==", Type::kNumber, Type::kBool}; break;
      case BinaryOp::kNe: spec = {Op::kNe, "!=", Type::kNumber, Type::kBool}; break;
      case BinaryOp::kAnd: spec = {Op::kAnd, "AND", Type::kBool, Type::kBool}; break;
      case BinaryOp::kOr: spec = {Op::kOr, "OR", Type::kBool, Type::kBool}; break;
    }
    if (*lhs != spec.operand || *rhs != spec.operand) {
      return Fail(expr.offset,
                  std::string("type error: operator '") + spec.name +
                      "' needs " + TypeName(spec.operand) + " operands, got " +
                      TypeName(*lhs) + " and " + TypeName(*rhs));
    }
    ops->push_back(Op{spec.op, 0.0, 0});
    return spec.result;
  }

  Status Fail(size_t offset, const std::string& message) {
    if (error_offset_ != nullptr) *error_offset_ = offset;
    return Status::InvalidArgument(message + " at offset " +
                                   std::to_string(offset));
  }

  const std::unordered_map<std::string, uint32_t>& params_;
  size_t* error_offset_;
};

double EvalOps(const std::vector<Op>& ops, const double* params,
               std::vector<double>* stack) {
  stack->clear();
  for (const Op& op : ops) {
    switch (op.kind) {
      case Op::kPushConst:
        stack->push_back(op.constant);
        break;
      case Op::kPushParam:
        stack->push_back(params[op.param]);
        break;
      case Op::kNeg:
        stack->back() = -stack->back();
        break;
      case Op::kNot:
        stack->back() = stack->back() != 0.0 ? 0.0 : 1.0;
        break;
      case Op::kSelect: {
        const double else_v = stack->back();
        stack->pop_back();
        const double then_v = stack->back();
        stack->pop_back();
        stack->back() = stack->back() != 0.0 ? then_v : else_v;
        break;
      }
      default: {
        const double b = stack->back();
        stack->pop_back();
        const double a = stack->back();
        double r = 0.0;
        switch (op.kind) {
          case Op::kAdd: r = a + b; break;
          case Op::kSub: r = a - b; break;
          case Op::kMul: r = a * b; break;
          case Op::kDiv: r = a / b; break;
          case Op::kLt: r = a < b ? 1.0 : 0.0; break;
          case Op::kLe: r = a <= b ? 1.0 : 0.0; break;
          case Op::kGt: r = a > b ? 1.0 : 0.0; break;
          case Op::kGe: r = a >= b ? 1.0 : 0.0; break;
          case Op::kEq: r = a == b ? 1.0 : 0.0; break;
          case Op::kNe: r = a != b ? 1.0 : 0.0; break;
          case Op::kAnd: r = (a != 0.0 && b != 0.0) ? 1.0 : 0.0; break;
          case Op::kOr: r = (a != 0.0 || b != 0.0) ? 1.0 : 0.0; break;
          default: break;  // unreachable: unary kinds handled above
        }
        stack->back() = r;
        break;
      }
    }
  }
  return stack->back();
}

Status Fail(size_t* error_offset, size_t offset, const std::string& message) {
  if (error_offset != nullptr) *error_offset = offset;
  return Status::InvalidArgument(message + " at offset " +
                                 std::to_string(offset));
}

}  // namespace

StatusOr<ScenarioProgram> ScenarioProgram::Compile(
    std::string_view source,
    std::shared_ptr<const CompiledPolynomialSet> compiled,
    const VariableTable& vars, size_t* error_offset) {
  if (compiled == nullptr) {
    return Status::InvalidArgument(
        "scenario program needs a compiled polynomial set");
  }
  auto ast = Parse(source, error_offset);
  if (!ast.ok()) return ast.status();

  ScenarioProgram program;
  program.compiled_ = std::move(compiled);

  // Parameters: unique names, non-empty finite domains, bounded product.
  std::unordered_map<std::string, uint32_t> param_index;
  for (const ParamDecl& decl : ast->params) {
    if (!param_index.emplace(decl.name, program.param_names_.size()).second) {
      return Fail(error_offset, decl.offset,
                  "duplicate parameter '" + decl.name + "'");
    }
    std::vector<double> domain;
    if (decl.kind == DomainKind::kSweep) {
      if (!std::isfinite(decl.lo) || !std::isfinite(decl.hi) ||
          !std::isfinite(decl.step)) {
        return Fail(error_offset, decl.offset, "sweep bounds must be finite");
      }
      if (decl.step <= 0.0) {
        return Fail(error_offset, decl.offset, "sweep STEP must be positive");
      }
      if (decl.hi < decl.lo) {
        return Fail(error_offset, decl.offset,
                    "sweep range is empty (hi < lo)");
      }
      // Tolerate the usual float drift so 0.1..1.0 step 0.1 yields 10
      // values, not 9. Values are computed as lo + i*step, never by
      // accumulation, so every expansion of the family is identical.
      const double span = (decl.hi - decl.lo) / decl.step;
      if (span > 1e15) {
        return Fail(error_offset, decl.offset, "sweep has too many values");
      }
      const uint64_t count = static_cast<uint64_t>(span + 1e-9) + 1;
      domain.reserve(count);
      for (uint64_t i = 0; i < count; ++i) {
        domain.push_back(decl.lo + static_cast<double>(i) * decl.step);
      }
    } else {
      for (double v : decl.values) {
        if (!std::isfinite(v)) {
          return Fail(error_offset, decl.offset,
                      "grid values must be finite");
        }
      }
      domain = decl.values;
    }
    if (program.scenario_count_ > kMaxScenarioFamily / domain.size()) {
      return Fail(error_offset, decl.offset,
                  "scenario family too large (limit " +
                      std::to_string(kMaxScenarioFamily) + " scenarios)");
    }
    program.scenario_count_ *= domain.size();
    program.param_names_.push_back(decl.name);
    program.param_values_.push_back(std::move(domain));
  }

  // Rules: type check and lower each value expression to postfix ops.
  ExprLowerer lowerer(param_index, error_offset);
  for (const Rule& rule : ast->rules) {
    std::vector<Op> ops;
    auto type = lowerer.Lower(*rule.value, &ops);
    if (!type.ok()) return type.status();
    if (*type != Type::kNumber) {
      return Fail(error_offset, rule.value->offset,
                  "type error: rule value must be a number, got bool");
    }
    program.rules_.push_back(std::move(ops));
  }

  // Selectors: resolve against the compiled slot table, first match wins.
  const std::vector<VariableId>& slots = program.compiled_->slot_variables();
  std::unordered_map<std::string_view, uint32_t> slot_by_name;
  slot_by_name.reserve(slots.size());
  for (uint32_t s = 0; s < slots.size(); ++s) {
    if (slots[s] >= vars.size()) {
      return Status::Internal(
          "compiled set references a variable outside the variable table");
    }
    slot_by_name.emplace(vars.NameOf(slots[s]), s);
  }
  program.slot_rule_.assign(slots.size(), -1);
  auto claim = [&program](uint32_t slot, int32_t rule) {
    if (program.slot_rule_[slot] < 0) program.slot_rule_[slot] = rule;
  };
  for (size_t r = 0; r < ast->rules.size(); ++r) {
    const Selector& selector = ast->rules[r].selector;
    const int32_t rule = static_cast<int32_t>(r);
    switch (selector.kind) {
      case SelectorKind::kAll:
        for (uint32_t s = 0; s < slots.size(); ++s) claim(s, rule);
        break;
      case SelectorKind::kPrefix: {
        const std::string& prefix = selector.names[0];
        for (uint32_t s = 0; s < slots.size(); ++s) {
          const std::string& name = vars.NameOf(slots[s]);
          if (name.size() >= prefix.size() &&
              name.compare(0, prefix.size(), prefix) == 0) {
            claim(s, rule);
          }
        }
        break;
      }
      case SelectorKind::kExact:
      case SelectorKind::kSet:
        for (const std::string& name : selector.names) {
          auto it = slot_by_name.find(name);
          if (it == slot_by_name.end()) {
            return Fail(error_offset, selector.offset,
                        "variable '" + name +
                            "' does not occur in the evaluated polynomials");
          }
          claim(it->second, rule);
        }
        break;
    }
  }
  return program;
}

std::vector<double> ScenarioProgram::ParamValues(uint64_t index) const {
  std::vector<double> values(param_values_.size());
  for (size_t j = param_values_.size(); j-- > 0;) {
    const std::vector<double>& domain = param_values_[j];
    values[j] = domain[index % domain.size()];
    index /= domain.size();
  }
  return values;
}

Status ScenarioProgram::ExpandChunk(uint64_t begin, uint64_t end,
                                    std::vector<DenseValuation>* out) const {
  if (begin > end || end > scenario_count_) {
    return Status::OutOfRange("scenario chunk [" + std::to_string(begin) +
                              ", " + std::to_string(end) + ") exceeds family of " +
                              std::to_string(scenario_count_));
  }
  out->clear();
  out->reserve(static_cast<size_t>(end - begin));
  std::vector<double> params(param_values_.size());
  std::vector<double> rule_values(rules_.size());
  std::vector<double> stack;
  const size_t slot_count = compiled_->slot_count();
  for (uint64_t index = begin; index < end; ++index) {
    uint64_t rest = index;
    for (size_t j = param_values_.size(); j-- > 0;) {
      const std::vector<double>& domain = param_values_[j];
      params[j] = domain[rest % domain.size()];
      rest /= domain.size();
    }
    for (size_t r = 0; r < rules_.size(); ++r) {
      rule_values[r] = EvalOps(rules_[r], params.data(), &stack);
    }
    std::vector<double> slot_values(slot_count);
    for (size_t s = 0; s < slot_count; ++s) {
      const int32_t rule = slot_rule_[s];
      slot_values[s] = rule < 0 ? 1.0 : rule_values[rule];
    }
    out->push_back(compiled_->MaterializeSlots(std::move(slot_values)));
  }
  return Status::OK();
}

size_t ScenarioProgram::ApproxBytes() const {
  size_t bytes = sizeof(*this);
  for (const auto& name : param_names_) bytes += name.size() + sizeof(name);
  for (const auto& domain : param_values_) {
    bytes += domain.size() * sizeof(double) + sizeof(domain);
  }
  for (const auto& ops : rules_) bytes += ops.size() * sizeof(Op) + sizeof(ops);
  bytes += slot_rule_.size() * sizeof(int32_t);
  return bytes;
}

}  // namespace provabs::scenario
