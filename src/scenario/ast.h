#ifndef PROVABS_SCENARIO_AST_H_
#define PROVABS_SCENARIO_AST_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

namespace provabs::scenario {

/// AST of one parsed scenario program (parser.h). Every node carries the
/// byte offset of its head token so semantic analysis (program.h) can report
/// type and resolution errors with source positions, same as parse errors.
///
/// The language has two value types, numbers and booleans; which
/// expressions produce which is checked during analysis, not here.

enum class BinaryOp {
  kAdd,  ///< number x number -> number
  kSub,
  kMul,
  kDiv,
  kLt,   ///< number x number -> bool
  kLe,
  kGt,
  kGe,
  kEq,
  kNe,
  kAnd,  ///< bool x bool -> bool
  kOr,
};

enum class ExprKind {
  kNumber,  ///< literal
  kParam,   ///< reference to a LET-declared scenario parameter
  kNeg,     ///< unary minus (operand in `a`)
  kNot,     ///< logical NOT (operand in `a`)
  kBinary,  ///< `op` over `a`, `b`
  kIf,      ///< IF `a` THEN `b` ELSE `c`
};

struct Expr {
  ExprKind kind = ExprKind::kNumber;
  size_t offset = 0;
  double number = 0.0;     ///< kNumber
  std::string param;       ///< kParam: identifier spelling
  BinaryOp op = BinaryOp::kAdd;  ///< kBinary
  std::unique_ptr<Expr> a, b, c;
};

/// Which variables a SET rule assigns. Names may be quoted strings or bare
/// identifiers (quoting is only needed for names that collide with keywords
/// or contain characters the lexer would split).
enum class SelectorKind {
  kAll,     ///< `*` — every variable
  kExact,   ///< one variable by name
  kPrefix,  ///< PREFIX('p') — every variable whose name starts with p
  kSet,     ///< IN('a', 'b', ...) — explicit membership list
};

struct Selector {
  SelectorKind kind = SelectorKind::kAll;
  size_t offset = 0;
  std::vector<std::string> names;  ///< kExact/kPrefix: one entry; kSet: >= 1.
};

/// Domain of one LET-declared scenario parameter. A sweep enumerates
/// lo, lo + step, lo + 2*step, ... up to hi inclusive (each value computed
/// as lo + i*step, never by accumulation, so expansion order cannot drift);
/// a grid lists its values explicitly.
enum class DomainKind { kSweep, kGrid };

struct ParamDecl {
  std::string name;
  size_t offset = 0;
  DomainKind kind = DomainKind::kSweep;
  double lo = 0.0, hi = 0.0, step = 0.0;  ///< kSweep
  std::vector<double> values;             ///< kGrid
};

struct Rule {
  Selector selector;
  std::unique_ptr<Expr> value;  ///< must type-check to number
  size_t offset = 0;
};

/// A program is parameter declarations plus an ordered rule list. Rules are
/// first-match-wins per variable; variables no rule matches default to 1.0
/// (the provenance-neutral value, matching MaterializeValuation).
struct ProgramAst {
  std::vector<ParamDecl> params;
  std::vector<Rule> rules;
};

}  // namespace provabs::scenario

#endif  // PROVABS_SCENARIO_AST_H_
