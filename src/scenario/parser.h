#ifndef PROVABS_SCENARIO_PARSER_H_
#define PROVABS_SCENARIO_PARSER_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "common/statusor.h"
#include "scenario/ast.h"

namespace provabs::scenario {

/// Recursive-descent parser for the scenario expression language.
///
///   program   := stmt (';' stmt)* [';']
///   stmt      := 'LET' IDENT '=' domain
///              | 'SET' selector '=' expr
///   domain    := 'SWEEP' '(' signed '..' signed 'STEP' signed ')'
///              | 'GRID' '(' signed (',' signed)* ')'
///   signed    := ['-'] NUMBER
///   selector  := '*' | name | 'PREFIX' '(' name ')'
///              | 'IN' '(' name (',' name)* ')'
///   name      := IDENT | STRING
///   expr      := 'IF' expr 'THEN' expr 'ELSE' expr | or_expr
///   or_expr   := and_expr ('OR' and_expr)*
///   and_expr  := not_expr ('AND' not_expr)*
///   not_expr  := 'NOT' not_expr | cmp_expr
///   cmp_expr  := add_expr (('=='|'!='|'<'|'<='|'>'|'>=') add_expr)?
///   add_expr  := mul_expr (('+'|'-') mul_expr)*
///   mul_expr  := unary (('*'|'/') unary)*
///   unary     := '-' unary | NUMBER | IDENT | '(' expr ')'
///
/// Keywords are case-insensitive; `#` starts a comment to end of line.
/// Example (the paper's telephony what-if, a 10-scenario sweep):
///
///   LET d = SWEEP(0.1 .. 1.0 STEP 0.1);
///   SET PREFIX('supplier_x_') = d;
///   SET * = 1.0
///
/// On failure the returned Status is kInvalidArgument with the byte offset
/// in the message; when `error_offset` is non-null it also receives the
/// offset, so callers (provabs_cli) can render a caret diagnostic.
StatusOr<ProgramAst> Parse(std::string_view source,
                           size_t* error_offset = nullptr);

/// Renders a two-line caret diagnostic for an error at byte `offset` of
/// `source`: the offending source line, then a '^' under the column.
std::string CaretDiagnostic(std::string_view source, size_t offset);

}  // namespace provabs::scenario

#endif  // PROVABS_SCENARIO_PARSER_H_
