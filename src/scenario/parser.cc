#include "scenario/parser.h"

#include <memory>
#include <utility>
#include <vector>

#include "scenario/lexer.h"

namespace provabs::scenario {

namespace {

// Parenthesis/IF nesting is recursive descent; bound the depth so a hostile
// "((((..." input returns a Status instead of overflowing the stack.
constexpr int kMaxExprDepth = 200;

class Parser {
 public:
  Parser(std::vector<Token> tokens, size_t* error_offset)
      : tokens_(std::move(tokens)), error_offset_(error_offset) {}

  StatusOr<ProgramAst> ParseProgram() {
    ProgramAst program;
    while (Accept(TokenKind::kSemicolon)) {
    }
    if (Peek().kind == TokenKind::kEnd) {
      return Error("empty program");
    }
    for (;;) {
      if (AcceptKeyword("LET")) {
        auto decl = ParseLet();
        if (!decl.ok()) return decl.status();
        program.params.push_back(std::move(*decl));
      } else if (AcceptKeyword("SET")) {
        auto rule = ParseSet();
        if (!rule.ok()) return rule.status();
        program.rules.push_back(std::move(*rule));
      } else {
        return Error("expected LET or SET");
      }
      bool saw_semicolon = false;
      while (Accept(TokenKind::kSemicolon)) saw_semicolon = true;
      if (Peek().kind == TokenKind::kEnd) break;
      if (!saw_semicolon) return Error("expected ';'");
    }
    return program;
  }

 private:
  // `tokens_` always ends with a kEnd sentinel; Next() refuses to advance
  // past it, so no production can overread the stream.
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Next() {
    const Token& token = tokens_[pos_];
    if (token.kind != TokenKind::kEnd) ++pos_;
    return token;
  }

  bool Accept(TokenKind kind) {
    if (Peek().kind != kind) return false;
    ++pos_;
    return true;
  }

  bool PeekKeyword(const char* kw) const {
    return Peek().kind == TokenKind::kKeyword && Peek().text == kw;
  }

  bool AcceptKeyword(const char* kw) {
    if (!PeekKeyword(kw)) return false;
    ++pos_;
    return true;
  }

  Status ExpectKeyword(const char* kw) {
    if (!AcceptKeyword(kw)) {
      return Error(std::string("expected ") + kw);
    }
    return Status::OK();
  }

  Status Expect(TokenKind kind, const char* what) {
    if (!Accept(kind)) {
      return Error(std::string("expected ") + what);
    }
    return Status::OK();
  }

  Status Error(const std::string& message) {
    if (error_offset_ != nullptr) *error_offset_ = Peek().offset;
    return Status::InvalidArgument(message + " at offset " +
                                   std::to_string(Peek().offset));
  }

  // let := LET IDENT '=' (SWEEP '(' signed '..' signed STEP signed ')'
  //                      | GRID '(' signed (',' signed)* ')')
  StatusOr<ParamDecl> ParseLet() {
    ParamDecl decl;
    decl.offset = Peek().offset;
    if (Peek().kind != TokenKind::kIdentifier) {
      return Error("expected parameter name");
    }
    decl.name = Next().text;
    if (Status s = Expect(TokenKind::kAssign, "'='"); !s.ok()) return s;
    if (AcceptKeyword("SWEEP")) {
      decl.kind = DomainKind::kSweep;
      if (Status s = Expect(TokenKind::kLParen, "'('"); !s.ok()) return s;
      auto lo = ParseSignedNumber();
      if (!lo.ok()) return lo.status();
      decl.lo = *lo;
      if (Status s = Expect(TokenKind::kDotDot, "'..'"); !s.ok()) return s;
      auto hi = ParseSignedNumber();
      if (!hi.ok()) return hi.status();
      decl.hi = *hi;
      if (Status s = ExpectKeyword("STEP"); !s.ok()) return s;
      auto step = ParseSignedNumber();
      if (!step.ok()) return step.status();
      decl.step = *step;
      if (Status s = Expect(TokenKind::kRParen, "')'"); !s.ok()) return s;
    } else if (AcceptKeyword("GRID")) {
      decl.kind = DomainKind::kGrid;
      if (Status s = Expect(TokenKind::kLParen, "'('"); !s.ok()) return s;
      for (;;) {
        auto value = ParseSignedNumber();
        if (!value.ok()) return value.status();
        decl.values.push_back(*value);
        if (!Accept(TokenKind::kComma)) break;
      }
      if (Status s = Expect(TokenKind::kRParen, "')'"); !s.ok()) return s;
    } else {
      return Error("expected SWEEP or GRID");
    }
    return decl;
  }

  // set := SET selector '=' expr
  StatusOr<Rule> ParseSet() {
    Rule rule;
    rule.offset = Peek().offset;
    auto selector = ParseSelector();
    if (!selector.ok()) return selector.status();
    rule.selector = std::move(*selector);
    if (Status s = Expect(TokenKind::kAssign, "'='"); !s.ok()) return s;
    auto value = ParseExpr(0);
    if (!value.ok()) return value.status();
    rule.value = std::move(*value);
    return rule;
  }

  StatusOr<Selector> ParseSelector() {
    Selector selector;
    selector.offset = Peek().offset;
    if (Accept(TokenKind::kStar)) {
      selector.kind = SelectorKind::kAll;
      return selector;
    }
    if (AcceptKeyword("PREFIX")) {
      selector.kind = SelectorKind::kPrefix;
      if (Status s = Expect(TokenKind::kLParen, "'('"); !s.ok()) return s;
      auto name = ParseName();
      if (!name.ok()) return name.status();
      selector.names.push_back(std::move(*name));
      if (Status s = Expect(TokenKind::kRParen, "')'"); !s.ok()) return s;
      return selector;
    }
    if (AcceptKeyword("IN")) {
      selector.kind = SelectorKind::kSet;
      if (Status s = Expect(TokenKind::kLParen, "'('"); !s.ok()) return s;
      for (;;) {
        auto name = ParseName();
        if (!name.ok()) return name.status();
        selector.names.push_back(std::move(*name));
        if (!Accept(TokenKind::kComma)) break;
      }
      if (Status s = Expect(TokenKind::kRParen, "')'"); !s.ok()) return s;
      return selector;
    }
    if (Peek().kind == TokenKind::kIdentifier ||
        Peek().kind == TokenKind::kString) {
      selector.kind = SelectorKind::kExact;
      selector.names.push_back(Next().text);
      return selector;
    }
    return Error("expected '*', PREFIX(...), IN(...), or a variable name");
  }

  StatusOr<std::string> ParseName() {
    if (Peek().kind == TokenKind::kIdentifier ||
        Peek().kind == TokenKind::kString) {
      return Next().text;
    }
    return Error("expected a variable name");
  }

  StatusOr<double> ParseSignedNumber() {
    bool negative = Accept(TokenKind::kMinus);
    if (Peek().kind != TokenKind::kNumber) {
      return Error("expected a number");
    }
    double value = Next().number;
    return negative ? -value : value;
  }

  StatusOr<std::unique_ptr<Expr>> ParseExpr(int depth) {
    if (depth > kMaxExprDepth) {
      return Error("expression too deeply nested");
    }
    if (PeekKeyword("IF")) {
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kIf;
      node->offset = Next().offset;
      auto cond = ParseExpr(depth + 1);
      if (!cond.ok()) return cond.status();
      node->a = std::move(*cond);
      if (Status s = ExpectKeyword("THEN"); !s.ok()) return s;
      auto then_expr = ParseExpr(depth + 1);
      if (!then_expr.ok()) return then_expr.status();
      node->b = std::move(*then_expr);
      if (Status s = ExpectKeyword("ELSE"); !s.ok()) return s;
      auto else_expr = ParseExpr(depth + 1);
      if (!else_expr.ok()) return else_expr.status();
      node->c = std::move(*else_expr);
      return node;
    }
    return ParseOr(depth);
  }

  StatusOr<std::unique_ptr<Expr>> ParseOr(int depth) {
    auto lhs = ParseAnd(depth);
    if (!lhs.ok()) return lhs;
    while (PeekKeyword("OR")) {
      size_t offset = Next().offset;
      auto rhs = ParseAnd(depth);
      if (!rhs.ok()) return rhs;
      lhs = MakeBinary(BinaryOp::kOr, offset, std::move(*lhs), std::move(*rhs));
    }
    return lhs;
  }

  StatusOr<std::unique_ptr<Expr>> ParseAnd(int depth) {
    auto lhs = ParseNot(depth);
    if (!lhs.ok()) return lhs;
    while (PeekKeyword("AND")) {
      size_t offset = Next().offset;
      auto rhs = ParseNot(depth);
      if (!rhs.ok()) return rhs;
      lhs =
          MakeBinary(BinaryOp::kAnd, offset, std::move(*lhs), std::move(*rhs));
    }
    return lhs;
  }

  StatusOr<std::unique_ptr<Expr>> ParseNot(int depth) {
    if (depth > kMaxExprDepth) {
      return Error("expression too deeply nested");
    }
    if (PeekKeyword("NOT")) {
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kNot;
      node->offset = Next().offset;
      auto operand = ParseNot(depth + 1);
      if (!operand.ok()) return operand;
      node->a = std::move(*operand);
      return node;
    }
    return ParseCmp(depth);
  }

  StatusOr<std::unique_ptr<Expr>> ParseCmp(int depth) {
    auto lhs = ParseAdd(depth);
    if (!lhs.ok()) return lhs;
    BinaryOp op;
    switch (Peek().kind) {
      case TokenKind::kEq: op = BinaryOp::kEq; break;
      case TokenKind::kNe: op = BinaryOp::kNe; break;
      case TokenKind::kLt: op = BinaryOp::kLt; break;
      case TokenKind::kLe: op = BinaryOp::kLe; break;
      case TokenKind::kGt: op = BinaryOp::kGt; break;
      case TokenKind::kGe: op = BinaryOp::kGe; break;
      default: return lhs;
    }
    size_t offset = Next().offset;
    auto rhs = ParseAdd(depth);
    if (!rhs.ok()) return rhs;
    return MakeBinary(op, offset, std::move(*lhs), std::move(*rhs));
  }

  StatusOr<std::unique_ptr<Expr>> ParseAdd(int depth) {
    auto lhs = ParseMul(depth);
    if (!lhs.ok()) return lhs;
    for (;;) {
      BinaryOp op;
      if (Peek().kind == TokenKind::kPlus) {
        op = BinaryOp::kAdd;
      } else if (Peek().kind == TokenKind::kMinus) {
        op = BinaryOp::kSub;
      } else {
        return lhs;
      }
      size_t offset = Next().offset;
      auto rhs = ParseMul(depth);
      if (!rhs.ok()) return rhs;
      lhs = MakeBinary(op, offset, std::move(*lhs), std::move(*rhs));
    }
  }

  StatusOr<std::unique_ptr<Expr>> ParseMul(int depth) {
    auto lhs = ParseUnary(depth);
    if (!lhs.ok()) return lhs;
    for (;;) {
      BinaryOp op;
      if (Peek().kind == TokenKind::kStar) {
        op = BinaryOp::kMul;
      } else if (Peek().kind == TokenKind::kSlash) {
        op = BinaryOp::kDiv;
      } else {
        return lhs;
      }
      size_t offset = Next().offset;
      auto rhs = ParseUnary(depth);
      if (!rhs.ok()) return rhs;
      lhs = MakeBinary(op, offset, std::move(*lhs), std::move(*rhs));
    }
  }

  StatusOr<std::unique_ptr<Expr>> ParseUnary(int depth) {
    if (depth > kMaxExprDepth) {
      return Error("expression too deeply nested");
    }
    if (Peek().kind == TokenKind::kMinus) {
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kNeg;
      node->offset = Next().offset;
      auto operand = ParseUnary(depth + 1);
      if (!operand.ok()) return operand;
      node->a = std::move(*operand);
      return node;
    }
    if (Peek().kind == TokenKind::kNumber) {
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kNumber;
      node->offset = Peek().offset;
      node->number = Next().number;
      return node;
    }
    if (Peek().kind == TokenKind::kIdentifier) {
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kParam;
      node->offset = Peek().offset;
      node->param = Next().text;
      return node;
    }
    if (Accept(TokenKind::kLParen)) {
      auto inner = ParseExpr(depth + 1);
      if (!inner.ok()) return inner;
      if (Status s = Expect(TokenKind::kRParen, "')'"); !s.ok()) return s;
      return inner;
    }
    return Error("expected a number, parameter, or '('");
  }

  static std::unique_ptr<Expr> MakeBinary(BinaryOp op, size_t offset,
                                          std::unique_ptr<Expr> a,
                                          std::unique_ptr<Expr> b) {
    auto node = std::make_unique<Expr>();
    node->kind = ExprKind::kBinary;
    node->op = op;
    node->offset = offset;
    node->a = std::move(a);
    node->b = std::move(b);
    return node;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  size_t* error_offset_ = nullptr;
};

}  // namespace

StatusOr<ProgramAst> Parse(std::string_view source, size_t* error_offset) {
  auto tokens = Tokenize(source, error_offset);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(*tokens), error_offset);
  return parser.ParseProgram();
}

std::string CaretDiagnostic(std::string_view source, size_t offset) {
  if (offset > source.size()) offset = source.size();
  size_t line_start = 0;
  size_t line_no = 1;
  for (size_t i = 0; i < offset; ++i) {
    if (source[i] == '\n') {
      line_start = i + 1;
      ++line_no;
    }
  }
  size_t line_end = source.find('\n', line_start);
  if (line_end == std::string_view::npos) line_end = source.size();
  const size_t column = offset - line_start;
  std::string out = "line " + std::to_string(line_no) + ", column " +
                    std::to_string(column + 1) + ":\n  ";
  out.append(source.substr(line_start, line_end - line_start));
  out.append("\n  ");
  out.append(column, ' ');
  out.push_back('^');
  return out;
}

}  // namespace provabs::scenario
