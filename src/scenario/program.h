#ifndef PROVABS_SCENARIO_PROGRAM_H_
#define PROVABS_SCENARIO_PROGRAM_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/statusor.h"
#include "core/compiled_polynomial_set.h"
#include "scenario/ast.h"

namespace provabs {
class VariableTable;
}  // namespace provabs

namespace provabs::scenario {

/// One stack-machine instruction of a lowered rule expression. Semantic
/// analysis flattens the typed AST into postfix ops so per-scenario
/// evaluation is a loop over a flat array — no tree walk, no allocation.
/// Booleans are represented as 0.0 / 1.0; AND/OR evaluate both operands
/// (expressions are pure, so eager evaluation is observationally identical
/// to short-circuit and keeps the op stream branch-free).
struct Op {
  enum Kind : uint8_t {
    kPushConst,
    kPushParam,
    kNeg,
    kNot,
    kAdd,
    kSub,
    kMul,
    kDiv,
    kLt,
    kLe,
    kGt,
    kGe,
    kEq,
    kNe,
    kAnd,
    kOr,
    kSelect,  ///< pops else, then, cond; pushes cond != 0 ? then : else
  };
  Kind kind = kPushConst;
  double constant = 0.0;  ///< kPushConst
  uint32_t param = 0;     ///< kPushParam: parameter index
};

/// A scenario program compiled against one CompiledPolynomialSet: parse +
/// type check + selector resolution done once, after which the scenario
/// family expands lazily in chunks of fingerprint-stamped DenseValuations
/// ready for EvaluateScenarios / EvaluateBatcher.
///
/// Expansion semantics: the scenario space is the Cartesian product of the
/// LET parameter domains in declaration order, the LAST parameter varying
/// fastest (row-major). A program with no parameters is a single scenario.
/// For each scenario, every rule expression is evaluated once under the
/// parameter assignment; each variable takes the value of the FIRST rule
/// whose selector matches its name, or 1.0 if none does.
///
/// Instances are immutable after Compile and safe to share across threads;
/// the serving tier caches them in ArtifactStore keyed by (artifact
/// generation, source hash).
class ScenarioProgram {
 public:
  /// Parses `source` and analyzes it against `compiled`'s slot table
  /// (variable names resolved via `vars`, which must be the table the
  /// compiled set's VariableIds index into). All errors are
  /// kInvalidArgument with a byte offset in the message; `error_offset`
  /// (optional) receives the offset for caret diagnostics.
  static StatusOr<ScenarioProgram> Compile(
      std::string_view source,
      std::shared_ptr<const CompiledPolynomialSet> compiled,
      const VariableTable& vars, size_t* error_offset = nullptr);

  /// Total scenarios in the family (>= 1; Compile rejects empty domains).
  uint64_t scenario_count() const { return scenario_count_; }

  size_t param_count() const { return param_names_.size(); }
  const std::vector<std::string>& param_names() const { return param_names_; }
  size_t rule_count() const { return rules_.size(); }

  /// Parameter assignment of scenario `index` (mixed-radix decode of the
  /// Cartesian product, last parameter fastest), in declaration order.
  std::vector<double> ParamValues(uint64_t index) const;

  /// Expands scenarios [begin, end) into `out` (cleared first), each
  /// stamped with the compiled set's fingerprint. kOutOfRange if the range
  /// exceeds scenario_count().
  Status ExpandChunk(uint64_t begin, uint64_t end,
                     std::vector<DenseValuation>* out) const;

  /// The compiled set this program was analyzed against. Expansion and
  /// evaluation must both use this snapshot: its fingerprint is what the
  /// expanded valuations carry.
  const std::shared_ptr<const CompiledPolynomialSet>& compiled() const {
    return compiled_;
  }

  /// Rough resident size, for the serving layer's byte-budget accounting.
  size_t ApproxBytes() const;

 private:
  ScenarioProgram() = default;

  std::shared_ptr<const CompiledPolynomialSet> compiled_;
  std::vector<std::string> param_names_;         // declaration order
  std::vector<std::vector<double>> param_values_;  // domain per parameter
  std::vector<std::vector<Op>> rules_;           // lowered rule expressions
  std::vector<int32_t> slot_rule_;  // slot -> rule index, -1 = default 1.0
  uint64_t scenario_count_ = 1;
};

}  // namespace provabs::scenario

#endif  // PROVABS_SCENARIO_PROGRAM_H_
