#include "parallel/thread_pool.h"

#include <algorithm>

#include "common/macros.h"

namespace provabs {

ThreadPool::ThreadPool(size_t num_threads) {
  size_t n = std::max<size_t>(1, num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    PROVABS_CHECK(!shutdown_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& body) {
  if (n == 0) return;
  const size_t chunks = std::min(n, thread_count());
  const size_t per_chunk = (n + chunks - 1) / chunks;
  for (size_t c = 0; c < chunks; ++c) {
    const size_t begin = c * per_chunk;
    const size_t end = std::min(n, begin + per_chunk);
    if (begin >= end) break;
    Submit([begin, end, &body] {
      for (size_t i = begin; i < end; ++i) body(i);
    });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace provabs
