#ifndef PROVABS_PARALLEL_THREAD_POOL_H_
#define PROVABS_PARALLEL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace provabs {

/// Fixed-size worker pool. The paper's deployment generates provenance "on
/// strong computing and storage capabilities" [24]; this substrate lets the
/// compression phase use those cores (see parallel_compress.h).
class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains pending work and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads actually started.
  size_t thread_count() const { return workers_.size(); }

  /// Enqueues a task.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  /// Runs `body(i)` for i in [0, n), split into `thread_count()`-sized
  /// contiguous chunks across the pool, and blocks until done.
  void ParallelFor(size_t n, const std::function<void(size_t)>& body);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace provabs

#endif  // PROVABS_PARALLEL_THREAD_POOL_H_
