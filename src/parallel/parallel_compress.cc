#include "parallel/parallel_compress.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "abstraction/cut_counter.h"
#include "abstraction/valid_variable_set.h"
#include "common/macros.h"
#include "core/compiled_polynomial_set.h"
#include "core/evaluation_backend.h"

namespace provabs {

std::vector<LossReport> ParallelNodeLosses(const PolynomialSet& polys,
                                           const AbstractionTree& tree,
                                           ThreadPool& pool) {
  // The index build is one sequential pass (cheap); per-node loss queries
  // dominate and parallelize trivially.
  LeafResidualIndex index(polys, tree);
  std::vector<LossReport> losses(tree.node_count());
  pool.ParallelFor(tree.node_count(), [&](size_t v) {
    losses[v] = index.NodeLoss(static_cast<NodeIndex>(v));
  });
  return losses;
}

StatusOr<CompressionResult> ParallelBruteForce(
    const PolynomialSet& polys, const AbstractionForest& forest,
    size_t bound_b, ThreadPool& pool, const BruteForceOptions& options) {
  Status compat = forest.CheckCompatible(polys);
  if (!compat.ok()) return compat;
  if (bound_b == 0) {
    return Status::InvalidArgument("bound must be at least 1");
  }
  double total_cuts_approx = CountForestCutsApprox(forest);
  if (total_cuts_approx > static_cast<double>(options.max_cuts)) {
    return Status::OutOfRange("forest admits too many cuts for brute force");
  }

  const size_t size_m = polys.SizeM();
  const size_t k = bound_b >= size_m ? 0 : size_m - bound_b;

  std::vector<std::vector<std::vector<NodeIndex>>> per_tree;
  per_tree.reserve(forest.tree_count());
  uint64_t total_cuts = 1;
  for (uint32_t t = 0; t < forest.tree_count(); ++t) {
    per_tree.push_back(internal::EnumerateTreeCuts(forest.tree(t)));
    total_cuts *= per_tree.back().size();
  }

  // Each worker scans a contiguous range of the mixed-radix cut index
  // space and keeps its local best; reduce afterwards.
  struct LocalBest {
    bool found = false;
    CompressionResult result;
  };
  const size_t shards = pool.thread_count() * 4;
  std::vector<LocalBest> best_per_shard(shards);
  const uint64_t per_shard = (total_cuts + shards - 1) / shards;

  std::atomic<bool> expired{false};
  pool.ParallelFor(shards, [&](size_t shard) {
    const uint64_t begin = shard * per_shard;
    const uint64_t end = std::min<uint64_t>(total_cuts, begin + per_shard);
    LocalBest& local = best_per_shard[shard];
    for (uint64_t idx = begin; idx < end; ++idx) {
      // Same time-budget contract as the serial BruteForce: checked per
      // cut; one worker noticing expiry drains every shard promptly.
      if (expired.load(std::memory_order_relaxed)) return;
      if (options.deadline.Expired()) {
        expired.store(true, std::memory_order_relaxed);
        return;
      }
      // Decode the mixed-radix index into one cut per tree.
      uint64_t rest = idx;
      std::vector<NodeRef> nodes;
      for (uint32_t t = 0; t < per_tree.size(); ++t) {
        const auto& cuts = per_tree[t];
        const auto& cut = cuts[rest % cuts.size()];
        rest /= cuts.size();
        for (NodeIndex n : cut) nodes.push_back(NodeRef{t, n});
      }
      ValidVariableSet vvs(std::move(nodes));
      LossReport loss = ComputeLossNaive(polys, forest, vvs);
      if (loss.monomial_loss < k) continue;
      if (!local.found ||
          loss.variable_loss < local.result.loss.variable_loss) {
        local.result.vvs = std::move(vvs);
        local.result.loss = loss;
        local.result.adequate = true;
        local.found = true;
      }
    }
  });

  if (expired.load(std::memory_order_relaxed)) {
    return Status::OutOfRange("brute force exceeded its time budget");
  }
  bool found = false;
  CompressionResult best;
  for (LocalBest& local : best_per_shard) {
    if (!local.found) continue;
    if (!found ||
        local.result.loss.variable_loss < best.loss.variable_loss) {
      best = std::move(local.result);
      found = true;
    }
  }
  if (!found) {
    return Status::Infeasible("no valid variable set is adequate for bound");
  }
  return best;
}

namespace {

/// Polynomials per parallel chunk. Coarse enough that chunk dispatch is
/// noise, fine enough to load-balance uneven polynomial sizes.
constexpr size_t kPolysPerChunk = 64;

size_t ChunkCount(size_t poly_count, const ThreadPool& pool) {
  const size_t by_size = (poly_count + kPolysPerChunk - 1) / kPolysPerChunk;
  return std::max<size_t>(1, std::min(by_size, pool.thread_count()));
}

}  // namespace

std::vector<double> ParallelEvaluateAll(const Valuation& valuation,
                                        const PolynomialSet& polys,
                                        ThreadPool& pool) {
  // Compile (cached on the set) and materialize the valuation once, then
  // chunk the flat CSR arrays across the pool: each worker routes one
  // contiguous polynomial range through the backend registry's auto policy
  // (the highest available single-scenario tier — jit, or compiled when
  // executable memory is unavailable; all backends are bitwise identical
  // by contract, so the output matches Valuation::EvaluateAll exactly).
  std::shared_ptr<const CompiledPolynomialSet> compiled = polys.Compiled();
  const DenseValuation dense = compiled->MaterializeValuation(valuation);
  std::vector<double> out(compiled->poly_count());
  StatusOr<const EvaluationBackend*> backend =
      EvaluationBackendRegistry::Default().ResolveForBatch("", 1);
  PROVABS_CHECK(backend.ok());
  const size_t poly_count = compiled->poly_count();
  const size_t chunks = ChunkCount(poly_count, pool);
  const size_t per_chunk = (poly_count + chunks - 1) / chunks;
  pool.ParallelFor(chunks, [&](size_t chunk) {
    const size_t begin = chunk * per_chunk;
    const size_t end = std::min(poly_count, begin + per_chunk);
    if (begin >= end) return;
    const DenseValuation* scenario = &dense;
    double* out_ptr = out.data() + begin;
    Status status = (*backend)->EvaluateBatch(*compiled, begin, end,
                                              &scenario, &out_ptr, 1);
    PROVABS_CHECK(status.ok());
  });
  return out;
}

StatusOr<std::vector<std::vector<double>>> ParallelEvaluateScenarios(
    const std::vector<Valuation>& scenarios, const PolynomialSet& polys,
    ThreadPool& pool, const std::string& backend_name) {
  std::shared_ptr<const CompiledPolynomialSet> compiled = polys.Compiled();
  StatusOr<const EvaluationBackend*> backend =
      EvaluationBackendRegistry::Default().ResolveForBatch(backend_name,
                                                           scenarios.size());
  if (!backend.ok()) return backend.status();

  const size_t n = scenarios.size();
  const size_t poly_count = compiled->poly_count();
  std::vector<std::vector<double>> out(n, std::vector<double>(poly_count));
  std::vector<DenseValuation> dense;
  dense.reserve(n);
  for (const Valuation& scenario : scenarios) {
    dense.push_back(compiled->MaterializeValuation(scenario));
  }
  std::vector<const DenseValuation*> dense_ptrs(n);
  for (size_t s = 0; s < n; ++s) dense_ptrs[s] = &dense[s];
  if (n == 0 || poly_count == 0) return out;

  // Parallelism stays over POLYNOMIAL ranges (one EvaluateBatch per chunk
  // carrying the whole scenario batch), so the chosen backend keeps full
  // lanes regardless of the pool width.
  const size_t chunks = ChunkCount(poly_count, pool);
  const size_t per_chunk = (poly_count + chunks - 1) / chunks;
  std::vector<Status> chunk_status(chunks);
  pool.ParallelFor(chunks, [&](size_t chunk) {
    const size_t begin = chunk * per_chunk;
    const size_t end = std::min(poly_count, begin + per_chunk);
    if (begin >= end) return;
    std::vector<double*> out_ptrs(n);
    for (size_t s = 0; s < n; ++s) out_ptrs[s] = out[s].data() + begin;
    chunk_status[chunk] = (*backend)->EvaluateBatch(
        *compiled, begin, end, dense_ptrs.data(), out_ptrs.data(), n);
  });
  for (const Status& status : chunk_status) {
    if (!status.ok()) return status;
  }
  return out;
}

StatusOr<CompressionResult> ParallelCompress(const PolynomialSet& polys,
                                             const AbstractionForest& forest,
                                             const std::string& algo,
                                             const CompressOptions& options,
                                             ThreadPool& pool) {
  StatusOr<const Compressor*> compressor =
      CompressorRegistry::Default().Resolve(algo);
  if (!compressor.ok()) return compressor.status();
  if (algo == "brute") {
    BruteForceOptions brute;
    if (options.time_budget_ms > 0) {
      brute.deadline = Deadline::AfterMillis(options.time_budget_ms);
    }
    return ParallelBruteForce(polys, forest, options.bound, pool, brute);
  }
  return (*compressor)->Compress(polys, forest, options);
}

}  // namespace provabs
