#include "parallel/parallel_compress.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "abstraction/cut_counter.h"
#include "abstraction/valid_variable_set.h"
#include "common/macros.h"
#include "core/compiled_polynomial_set.h"

namespace provabs {

std::vector<LossReport> ParallelNodeLosses(const PolynomialSet& polys,
                                           const AbstractionTree& tree,
                                           ThreadPool& pool) {
  // The index build is one sequential pass (cheap); per-node loss queries
  // dominate and parallelize trivially.
  LeafResidualIndex index(polys, tree);
  std::vector<LossReport> losses(tree.node_count());
  pool.ParallelFor(tree.node_count(), [&](size_t v) {
    losses[v] = index.NodeLoss(static_cast<NodeIndex>(v));
  });
  return losses;
}

StatusOr<CompressionResult> ParallelBruteForce(
    const PolynomialSet& polys, const AbstractionForest& forest,
    size_t bound_b, ThreadPool& pool, const BruteForceOptions& options) {
  Status compat = forest.CheckCompatible(polys);
  if (!compat.ok()) return compat;
  if (bound_b == 0) {
    return Status::InvalidArgument("bound must be at least 1");
  }
  double total_cuts_approx = CountForestCutsApprox(forest);
  if (total_cuts_approx > static_cast<double>(options.max_cuts)) {
    return Status::OutOfRange("forest admits too many cuts for brute force");
  }

  const size_t size_m = polys.SizeM();
  const size_t k = bound_b >= size_m ? 0 : size_m - bound_b;

  std::vector<std::vector<std::vector<NodeIndex>>> per_tree;
  per_tree.reserve(forest.tree_count());
  uint64_t total_cuts = 1;
  for (uint32_t t = 0; t < forest.tree_count(); ++t) {
    per_tree.push_back(internal::EnumerateTreeCuts(forest.tree(t)));
    total_cuts *= per_tree.back().size();
  }

  // Each worker scans a contiguous range of the mixed-radix cut index
  // space and keeps its local best; reduce afterwards.
  struct LocalBest {
    bool found = false;
    CompressionResult result;
  };
  const size_t shards = pool.thread_count() * 4;
  std::vector<LocalBest> best_per_shard(shards);
  const uint64_t per_shard = (total_cuts + shards - 1) / shards;

  std::atomic<bool> expired{false};
  pool.ParallelFor(shards, [&](size_t shard) {
    const uint64_t begin = shard * per_shard;
    const uint64_t end = std::min<uint64_t>(total_cuts, begin + per_shard);
    LocalBest& local = best_per_shard[shard];
    for (uint64_t idx = begin; idx < end; ++idx) {
      // Same time-budget contract as the serial BruteForce: checked per
      // cut; one worker noticing expiry drains every shard promptly.
      if (expired.load(std::memory_order_relaxed)) return;
      if (options.deadline.Expired()) {
        expired.store(true, std::memory_order_relaxed);
        return;
      }
      // Decode the mixed-radix index into one cut per tree.
      uint64_t rest = idx;
      std::vector<NodeRef> nodes;
      for (uint32_t t = 0; t < per_tree.size(); ++t) {
        const auto& cuts = per_tree[t];
        const auto& cut = cuts[rest % cuts.size()];
        rest /= cuts.size();
        for (NodeIndex n : cut) nodes.push_back(NodeRef{t, n});
      }
      ValidVariableSet vvs(std::move(nodes));
      LossReport loss = ComputeLossNaive(polys, forest, vvs);
      if (loss.monomial_loss < k) continue;
      if (!local.found ||
          loss.variable_loss < local.result.loss.variable_loss) {
        local.result.vvs = std::move(vvs);
        local.result.loss = loss;
        local.result.adequate = true;
        local.found = true;
      }
    }
  });

  if (expired.load(std::memory_order_relaxed)) {
    return Status::OutOfRange("brute force exceeded its time budget");
  }
  bool found = false;
  CompressionResult best;
  for (LocalBest& local : best_per_shard) {
    if (!local.found) continue;
    if (!found ||
        local.result.loss.variable_loss < best.loss.variable_loss) {
      best = std::move(local.result);
      found = true;
    }
  }
  if (!found) {
    return Status::Infeasible("no valid variable set is adequate for bound");
  }
  return best;
}

std::vector<double> ParallelEvaluateAll(const Valuation& valuation,
                                        const PolynomialSet& polys,
                                        ThreadPool& pool) {
  // Compile (cached on the set) and materialize the valuation once, then
  // chunk the flat CSR arrays across the pool: ParallelFor hands each
  // worker a contiguous polynomial range, which is a contiguous walk of the
  // compiled arrays. Per-polynomial evaluation reproduces the canonical
  // summation order, so the output is bitwise identical to the serial path.
  std::shared_ptr<const CompiledPolynomialSet> compiled = polys.Compiled();
  const DenseValuation dense = compiled->MaterializeValuation(valuation);
  std::vector<double> out(compiled->poly_count());
  pool.ParallelFor(compiled->poly_count(), [&](size_t i) {
    out[i] = compiled->EvaluateOne(i, dense);
  });
  return out;
}

StatusOr<CompressionResult> ParallelCompress(const PolynomialSet& polys,
                                             const AbstractionForest& forest,
                                             const std::string& algo,
                                             const CompressOptions& options,
                                             ThreadPool& pool) {
  StatusOr<const Compressor*> compressor =
      CompressorRegistry::Default().Resolve(algo);
  if (!compressor.ok()) return compressor.status();
  if (algo == "brute") {
    BruteForceOptions brute;
    if (options.time_budget_ms > 0) {
      brute.deadline = Deadline::AfterMillis(options.time_budget_ms);
    }
    return ParallelBruteForce(polys, forest, options.bound, pool, brute);
  }
  return (*compressor)->Compress(polys, forest, options);
}

}  // namespace provabs
