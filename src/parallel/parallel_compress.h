#ifndef PROVABS_PARALLEL_PARALLEL_COMPRESS_H_
#define PROVABS_PARALLEL_PARALLEL_COMPRESS_H_

#include <string>
#include <vector>

#include "abstraction/abstraction_forest.h"
#include "abstraction/loss.h"
#include "algo/brute_force.h"
#include "algo/compressor.h"
#include "algo/optimal_single_tree.h"
#include "common/statusor.h"
#include "core/polynomial_set.h"
#include "core/valuation.h"
#include "parallel/thread_pool.h"

namespace provabs {

/// Multi-core variants of the compression and evaluation primitives. The
/// paper's offline deployment computes provenance on powerful hardware
/// (§1, citing the distributed-provenance line [24]); these helpers use
/// that hardware for the compression step without changing any semantics —
/// each function is bit-identical to its serial counterpart (asserted by
/// tests).

/// Per-node singleton-cut losses for one tree, computed in parallel over
/// nodes (each NodeLoss reads the shared residual index independently).
/// result[v] = loss of the VVS {v} ∪ other-leaves.
std::vector<LossReport> ParallelNodeLosses(const PolynomialSet& polys,
                                           const AbstractionTree& tree,
                                           ThreadPool& pool);

/// Exhaustive search with the cut space partitioned across the pool.
/// Results match BruteForce exactly (same optimal variable loss; the
/// witness cut may differ among ties).
StatusOr<CompressionResult> ParallelBruteForce(
    const PolynomialSet& polys, const AbstractionForest& forest,
    size_t bound_b, ThreadPool& pool, const BruteForceOptions& options = {});

/// Evaluates every polynomial under `valuation` using the pool, routing
/// contiguous polynomial chunks through the evaluation-backend registry
/// (core/evaluation_backend.h); bitwise identical to
/// Valuation::EvaluateAll.
std::vector<double> ParallelEvaluateAll(const Valuation& valuation,
                                        const PolynomialSet& polys,
                                        ThreadPool& pool);

/// Batched what-if evaluation over the pool: every scenario against every
/// polynomial of the set, through the backend chosen by
/// EvaluationBackendRegistry::ResolveForBatch(backend_name, #scenarios)
/// (empty name = auto: simd_batch once the batch reaches its preferred
/// width). Workers split POLYNOMIAL ranges, each carrying the full scenario
/// batch, so the backend keeps full SIMD lanes at any pool width.
/// result[s][p] = value of polynomial p under scenarios[s], bitwise
/// identical to Valuation::Evaluate. Unknown backend names fail listing the
/// registered set.
StatusOr<std::vector<std::vector<double>>> ParallelEvaluateScenarios(
    const std::vector<Valuation>& scenarios, const PolynomialSet& polys,
    ThreadPool& pool, const std::string& backend_name = "");

/// Registry-routed compression with pool acceleration where it exists:
/// "brute" runs ParallelBruteForce over `pool`; every other registered
/// algorithm resolves through CompressorRegistry::Default() and runs its
/// serial implementation (their DPs are not parallelized yet). Results
/// match the serial counterparts exactly (for "brute": same optimal
/// variable loss, witness cut may differ among ties). Unknown names fail
/// with the registry's name-listing error.
StatusOr<CompressionResult> ParallelCompress(const PolynomialSet& polys,
                                             const AbstractionForest& forest,
                                             const std::string& algo,
                                             const CompressOptions& options,
                                             ThreadPool& pool);

}  // namespace provabs

#endif  // PROVABS_PARALLEL_PARALLEL_COMPRESS_H_
