#include "sql/planner.h"

#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "sql/parser.h"

namespace provabs::sql {

namespace {

/// Tracks the current name of every qualified column through joins (a hash
/// join drops the right key column; references to it must resolve to the
/// surviving left key).
class NameResolver {
 public:
  void AddTable(const std::string& table, const Schema& schema) {
    for (size_t i = 0; i < schema.column_count(); ++i) {
      // Record the bare column name for unqualified lookup.
      bare_[schema.column(i).name].insert(table);
    }
  }

  /// Qualified name under which `ref` currently travels, or an error.
  StatusOr<std::string> Resolve(const ColumnRef& ref) const {
    std::string qualified;
    if (!ref.table.empty()) {
      qualified = ref.table + "." + ref.column;
    } else {
      auto it = bare_.find(ref.column);
      if (it == bare_.end()) {
        return Status::NotFound("unknown column " + ref.ToString());
      }
      if (it->second.size() > 1) {
        return Status::InvalidArgument("ambiguous column " + ref.column);
      }
      qualified = *it->second.begin() + "." + ref.column;
    }
    // Chase join-key aliasing.
    auto alias = aliases_.find(qualified);
    int depth = 0;
    while (alias != aliases_.end()) {
      qualified = alias->second;
      alias = aliases_.find(qualified);
      if (++depth > 64) {
        return Status::Internal("alias cycle for " + qualified);
      }
    }
    return qualified;
  }

  /// Records that `dropped` is now represented by `survivor`.
  void AddAlias(const std::string& dropped, const std::string& survivor) {
    aliases_[dropped] = survivor;
  }

 private:
  std::unordered_map<std::string, std::set<std::string>> bare_;
  std::unordered_map<std::string, std::string> aliases_;
};

/// Scans `table` with every column renamed to "table.column".
AnnotatedTable QualifiedScan(const Table& table) {
  std::vector<Schema::Column> columns;
  columns.reserve(table.schema().column_count());
  for (size_t i = 0; i < table.schema().column_count(); ++i) {
    const auto& c = table.schema().column(i);
    columns.push_back({table.name() + "." + c.name, c.type});
  }
  AnnotatedTable out{Schema(std::move(columns))};
  for (const Row& row : table.rows()) {
    out.Append(row, OnePolynomial());
  }
  return out;
}

/// Evaluates an arithmetic expression over a row.
StatusOr<double> EvalExpr(const Expr& expr, const Row& row,
                          const Schema& schema,
                          const NameResolver& resolver) {
  switch (expr.kind) {
    case Expr::Kind::kNumber:
      return expr.number;
    case Expr::Kind::kColumn: {
      auto name = resolver.Resolve(expr.column);
      if (!name.ok()) return name.status();
      if (!schema.Has(*name)) {
        return Status::NotFound("column " + *name + " not in scope");
      }
      return AsDouble(row[schema.IndexOf(*name)]);
    }
    default: {
      auto lhs = EvalExpr(*expr.lhs, row, schema, resolver);
      if (!lhs.ok()) return lhs;
      auto rhs = EvalExpr(*expr.rhs, row, schema, resolver);
      if (!rhs.ok()) return rhs;
      switch (expr.kind) {
        case Expr::Kind::kAdd:
          return *lhs + *rhs;
        case Expr::Kind::kSub:
          return *lhs - *rhs;
        case Expr::Kind::kMul:
          return *lhs * *rhs;
        case Expr::Kind::kDiv:
          return *lhs / *rhs;
        default:
          return Status::Internal("bad expression node");
      }
    }
  }
}

/// Pre-resolves every column reference in an expression so per-row
/// evaluation has no failure paths left.
Status CheckExpr(const Expr& expr, const Schema& schema,
                 const NameResolver& resolver) {
  if (expr.kind == Expr::Kind::kColumn) {
    auto name = resolver.Resolve(expr.column);
    if (!name.ok()) return name.status();
    if (!schema.Has(*name)) {
      return Status::NotFound("column " + *name + " not in scope");
    }
    return Status::OK();
  }
  if (expr.lhs != nullptr) {
    if (Status s = CheckExpr(*expr.lhs, schema, resolver); !s.ok()) return s;
  }
  if (expr.rhs != nullptr) {
    if (Status s = CheckExpr(*expr.rhs, schema, resolver); !s.ok()) return s;
  }
  return Status::OK();
}

bool ValueEqualsLiteral(const Value& value, const Predicate& pred) {
  if (pred.rhs_literal_is_string) {
    return TypeOf(value) == ValueType::kString &&
           AsString(value) == std::get<std::string>(pred.rhs_literal);
  }
  double want = std::get<double>(pred.rhs_literal);
  switch (TypeOf(value)) {
    case ValueType::kInt64:
      return static_cast<double>(AsInt(value)) == want;
    case ValueType::kDouble:
      return AsDouble(value) == want;
    case ValueType::kString:
      return false;
  }
  return false;
}

}  // namespace

StatusOr<AnnotatedTable> Execute(const SelectStatement& stmt,
                                 const Database& db,
                                 const PlanOptions& options) {
  if (stmt.from_tables.empty()) {
    return Status::InvalidArgument("FROM list is empty");
  }
  // Reject duplicate FROM entries (no aliases in the subset).
  {
    std::unordered_set<std::string> seen;
    for (const std::string& t : stmt.from_tables) {
      if (!seen.insert(t).second) {
        return Status::Unimplemented("self-joins require aliases (table " +
                                     t + " listed twice)");
      }
      if (!db.Has(t)) {
        return Status::NotFound("unknown table " + t);
      }
    }
  }

  NameResolver resolver;
  std::unordered_map<std::string, AnnotatedTable> scans;
  for (const std::string& t : stmt.from_tables) {
    resolver.AddTable(t, db.Get(t).schema());
    scans.emplace(t, QualifiedScan(db.Get(t)));
  }

  // Classify predicates: per-table literal filters vs column equalities.
  struct JoinEdge {
    std::string left_col;   // Qualified.
    std::string right_col;  // Qualified.
    bool used = false;
  };
  std::vector<JoinEdge> equalities;
  std::vector<std::pair<std::string, const Predicate*>> filters;
  auto table_of = [](const std::string& qualified) {
    return qualified.substr(0, qualified.find('.'));
  };
  for (const Predicate& pred : stmt.where) {
    auto lhs = resolver.Resolve(pred.lhs);
    if (!lhs.ok()) return lhs.status();
    if (pred.rhs_is_column) {
      auto rhs = resolver.Resolve(pred.rhs_column);
      if (!rhs.ok()) return rhs.status();
      equalities.push_back(JoinEdge{*lhs, *rhs, false});
    } else {
      filters.emplace_back(*lhs, &pred);
    }
  }

  // Push literal filters below the joins.
  for (const auto& [qualified, pred] : filters) {
    std::string table = table_of(qualified);
    AnnotatedTable& scan = scans.at(table);
    size_t col = scan.schema().IndexOf(qualified);
    scan = Select(scan, [col, pred](const Row& row) {
      return ValueEqualsLiteral(row[col], *pred);
    });
  }

  // Join along the equality graph, starting from the first FROM table.
  AnnotatedTable current = std::move(scans.at(stmt.from_tables[0]));
  std::unordered_set<std::string> joined = {stmt.from_tables[0]};
  while (joined.size() < stmt.from_tables.size()) {
    bool progressed = false;
    for (JoinEdge& edge : equalities) {
      if (edge.used) continue;
      std::string lt = table_of(edge.left_col);
      std::string rt = table_of(edge.right_col);
      bool l_in = joined.count(lt) > 0;
      bool r_in = joined.count(rt) > 0;
      if (l_in == r_in) continue;  // Both joined (residual) or neither.
      // Normalize: `inner` column belongs to the current relation.
      std::string inner = l_in ? edge.left_col : edge.right_col;
      std::string outer = l_in ? edge.right_col : edge.left_col;
      std::string outer_table = table_of(outer);
      current = HashJoin(current, scans.at(outer_table), {{inner, outer}});
      // The right-side key column was dropped in favor of `inner`.
      resolver.AddAlias(outer, inner);
      joined.insert(outer_table);
      edge.used = true;
      progressed = true;
      break;
    }
    if (!progressed) {
      return Status::Unimplemented(
          "FROM tables are not connected by equality predicates "
          "(cartesian products unsupported)");
    }
  }

  // Residual equalities (both sides inside the joined relation).
  for (JoinEdge& edge : equalities) {
    if (edge.used) continue;
    ColumnRef l{table_of(edge.left_col),
                edge.left_col.substr(edge.left_col.find('.') + 1)};
    ColumnRef r{table_of(edge.right_col),
                edge.right_col.substr(edge.right_col.find('.') + 1)};
    auto lname = resolver.Resolve(l);
    if (!lname.ok()) return lname.status();
    auto rname = resolver.Resolve(r);
    if (!rname.ok()) return rname.status();
    size_t lcol = current.schema().IndexOf(*lname);
    size_t rcol = current.schema().IndexOf(*rname);
    current = Select(current, [lcol, rcol](const Row& row) {
      return row[lcol] == row[rcol];
    });
  }

  // No aggregate: plain projection of the select list.
  if (stmt.aggregate == AggregateFn::kNone) {
    std::vector<std::string> columns;
    for (const ColumnRef& ref : stmt.select_columns) {
      auto name = resolver.Resolve(ref);
      if (!name.ok()) return name.status();
      columns.push_back(*name);
    }
    return Project(current, columns, /*dedup=*/false);
  }

  // Aggregate path.
  if (stmt.aggregate_expr == nullptr) {
    return Status::Internal("aggregate without expression");
  }
  if (Status s = CheckExpr(*stmt.aggregate_expr, current.schema(), resolver);
      !s.ok()) {
    return s;
  }
  GroupBySumSpec spec;
  for (const ColumnRef& ref : stmt.group_by) {
    auto name = resolver.Resolve(ref);
    if (!name.ok()) return name.status();
    spec.group_columns.push_back(*name);
  }
  switch (stmt.aggregate) {
    case AggregateFn::kSum:
      spec.combine = CoefficientCombine::kAdd;
      break;
    case AggregateFn::kMin:
      spec.combine = CoefficientCombine::kMin;
      break;
    case AggregateFn::kMax:
      spec.combine = CoefficientCombine::kMax;
      break;
    case AggregateFn::kNone:
      break;
  }
  const Expr* expr = stmt.aggregate_expr.get();
  const Schema* schema = &current.schema();
  spec.coefficient = [expr, schema, &resolver](const Row& row) {
    auto value = EvalExpr(*expr, row, *schema, resolver);
    // CheckExpr validated resolution; arithmetic itself cannot fail.
    return value.ok() ? *value : 0.0;
  };
  if (options.parameters) {
    const ParameterHook& hook = options.parameters;
    spec.parameters = [&hook, schema](const Row& row) {
      return hook(row, *schema);
    };
  }
  return GroupBySum(current, spec);
}

StatusOr<AnnotatedTable> ExecuteSql(std::string_view query,
                                    const Database& db,
                                    const PlanOptions& options) {
  auto stmt = Parse(query);
  if (!stmt.ok()) return stmt.status();
  return Execute(*stmt, db, options);
}

}  // namespace provabs::sql
