#ifndef PROVABS_SQL_PARSER_H_
#define PROVABS_SQL_PARSER_H_

#include <string_view>

#include "common/statusor.h"
#include "sql/ast.h"

namespace provabs::sql {

/// Parses one SELECT statement of the subset documented in ast.h.
/// Returns kInvalidArgument with a location-bearing message on syntax
/// errors.
StatusOr<SelectStatement> Parse(std::string_view query);

}  // namespace provabs::sql

#endif  // PROVABS_SQL_PARSER_H_
