#ifndef PROVABS_SQL_LEXER_H_
#define PROVABS_SQL_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/statusor.h"

namespace provabs::sql {

/// Token kinds of the SQL subset (see parser.h for the grammar).
enum class TokenKind {
  kIdentifier,   ///< table / column names (possibly qualified later)
  kNumber,       ///< numeric literal
  kString,       ///< 'single-quoted'
  kKeyword,      ///< SELECT FROM WHERE AND GROUP BY SUM MIN MAX AS
  kComma,
  kDot,
  kStar,
  kPlus,
  kMinus,
  kSlash,
  kEquals,
  kLParen,
  kRParen,
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;    ///< Identifier/keyword (upper-cased for keywords) or
                       ///< literal spelling.
  double number = 0.0; ///< kNumber only.
  size_t offset = 0;   ///< Byte offset in the input (for error messages).
};

/// Tokenizes `input`. Keywords are recognized case-insensitively. Returns
/// kInvalidArgument for unterminated strings or unexpected characters.
StatusOr<std::vector<Token>> Tokenize(std::string_view input);

}  // namespace provabs::sql

#endif  // PROVABS_SQL_LEXER_H_
