#ifndef PROVABS_SQL_AST_H_
#define PROVABS_SQL_AST_H_

#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace provabs::sql {

/// Abstract syntax of the supported SQL subset — exactly what the paper's
/// experimental queries need (SPJ + GROUP BY with one SUM/MIN/MAX over an
/// arithmetic expression; see the running example's query in §1):
///
///   statement := SELECT item (, item)* FROM ident (, ident)*
///                [WHERE conjunct (AND conjunct)*]
///                [GROUP BY column (, column)*]
///   item      := column | SUM(expr) | MIN(expr) | MAX(expr)
///   conjunct  := column = column | column = literal
///   expr      := term ((+|-) term)*
///   term      := factor ((*|/) factor)*
///   factor    := column | number | ( expr )
///   column    := ident | ident . ident

/// A possibly-qualified column reference.
struct ColumnRef {
  std::string table;  ///< Empty when unqualified.
  std::string column;

  std::string ToString() const {
    return table.empty() ? column : table + "." + column;
  }
};

/// Arithmetic expression tree over columns and numeric literals.
struct Expr {
  enum class Kind { kColumn, kNumber, kAdd, kSub, kMul, kDiv };
  Kind kind = Kind::kNumber;
  ColumnRef column;       ///< kColumn.
  double number = 0.0;    ///< kNumber.
  std::unique_ptr<Expr> lhs;
  std::unique_ptr<Expr> rhs;
};

/// One WHERE conjunct: column = column (join) or column = literal (filter).
struct Predicate {
  ColumnRef lhs;
  bool rhs_is_column = false;
  ColumnRef rhs_column;
  std::variant<double, std::string> rhs_literal;  ///< number or 'string'.
  bool rhs_literal_is_string = false;
};

/// The aggregate of the single aggregate item (if any).
enum class AggregateFn { kNone, kSum, kMin, kMax };

struct SelectStatement {
  std::vector<ColumnRef> select_columns;  ///< Non-aggregate output columns.
  AggregateFn aggregate = AggregateFn::kNone;
  std::unique_ptr<Expr> aggregate_expr;   ///< Set iff aggregate != kNone.
  std::vector<std::string> from_tables;
  std::vector<Predicate> where;
  std::vector<ColumnRef> group_by;
};

}  // namespace provabs::sql

#endif  // PROVABS_SQL_AST_H_
