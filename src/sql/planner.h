#ifndef PROVABS_SQL_PLANNER_H_
#define PROVABS_SQL_PLANNER_H_

#include <functional>
#include <string_view>
#include <vector>

#include "common/statusor.h"
#include "core/variable.h"
#include "engine/query.h"
#include "engine/table.h"
#include "sql/ast.h"

namespace provabs::sql {

/// Provenance parameterization hook: called once per row of the fully
/// joined relation (before grouping) to attach scenario variables to that
/// row's monomial — the "where to place variables" choice of §4.2. The
/// schema uses qualified "table.column" names.
using ParameterHook =
    std::function<std::vector<VariableId>(const Row&, const Schema&)>;

struct PlanOptions {
  ParameterHook parameters;
};

/// Compiles and executes a parsed statement against `db`:
///  1. scans each FROM table under qualified column names,
///  2. pushes literal filters below the joins,
///  3. joins along column-equality predicates (hash joins; rejects
///     disconnected FROM lists with kUnimplemented),
///  4. applies the remaining predicates as selections,
///  5. evaluates the aggregate expression per row and groups
///     (SUM/MIN/MAX), attaching `options.parameters` variables.
/// Without an aggregate, projects the select list (bag semantics).
StatusOr<AnnotatedTable> Execute(const SelectStatement& stmt,
                                 const Database& db,
                                 const PlanOptions& options = {});

/// Parse + Execute.
StatusOr<AnnotatedTable> ExecuteSql(std::string_view query,
                                    const Database& db,
                                    const PlanOptions& options = {});

}  // namespace provabs::sql

#endif  // PROVABS_SQL_PLANNER_H_
