#include "sql/parser.h"

#include <memory>
#include <vector>

#include "sql/lexer.h"

namespace provabs::sql {

namespace {

/// Nesting ceiling for parenthesized expressions. Recursion depth tracks
/// input nesting, so a hostile "((((..." would otherwise convert a short
/// query string into a stack overflow; 200 is far beyond any real query.
constexpr int kMaxParenDepth = 200;

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<SelectStatement> ParseStatement() {
    SelectStatement stmt;
    if (Status s = ExpectKeyword("SELECT"); !s.ok()) return s;

    // Select list.
    for (;;) {
      if (PeekKeyword("SUM") || PeekKeyword("MIN") || PeekKeyword("MAX")) {
        if (stmt.aggregate != AggregateFn::kNone) {
          return Error("only one aggregate item is supported");
        }
        std::string fn = Next().text;
        stmt.aggregate = fn == "SUM"   ? AggregateFn::kSum
                         : fn == "MIN" ? AggregateFn::kMin
                                       : AggregateFn::kMax;
        if (Status s = Expect(TokenKind::kLParen); !s.ok()) return s;
        auto expr = ParseExpr();
        if (!expr.ok()) return expr.status();
        stmt.aggregate_expr = std::move(expr).value();
        if (Status s = Expect(TokenKind::kRParen); !s.ok()) return s;
      } else {
        auto column = ParseColumn();
        if (!column.ok()) return column.status();
        stmt.select_columns.push_back(*column);
      }
      if (!Accept(TokenKind::kComma)) break;
    }

    if (Status s = ExpectKeyword("FROM"); !s.ok()) return s;
    for (;;) {
      if (Peek().kind != TokenKind::kIdentifier) {
        return Error("expected table name");
      }
      stmt.from_tables.push_back(Next().text);
      if (!Accept(TokenKind::kComma)) break;
    }

    if (AcceptKeyword("WHERE")) {
      for (;;) {
        auto pred = ParsePredicate();
        if (!pred.ok()) return pred.status();
        stmt.where.push_back(std::move(*pred));
        if (!AcceptKeyword("AND")) break;
      }
    }

    if (AcceptKeyword("GROUP")) {
      if (Status s = ExpectKeyword("BY"); !s.ok()) return s;
      for (;;) {
        auto column = ParseColumn();
        if (!column.ok()) return column.status();
        stmt.group_by.push_back(*column);
        if (!Accept(TokenKind::kComma)) break;
      }
    }

    if (Peek().kind != TokenKind::kEnd) {
      return Error("unexpected trailing input");
    }
    if (stmt.aggregate != AggregateFn::kNone && stmt.group_by.empty() &&
        !stmt.select_columns.empty()) {
      return Error("aggregate with plain columns requires GROUP BY");
    }
    return stmt;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  // Never advances past the kEnd sentinel: every call site checks Peek()
  // first today, but an unchecked post-increment would turn any future
  // slip into an out-of-bounds read instead of a parse error.
  const Token& Next() {
    const Token& token = tokens_[pos_];
    if (token.kind != TokenKind::kEnd) ++pos_;
    return token;
  }

  bool Accept(TokenKind kind) {
    if (Peek().kind != kind) return false;
    ++pos_;
    return true;
  }

  bool PeekKeyword(const char* kw) const {
    return Peek().kind == TokenKind::kKeyword && Peek().text == kw;
  }

  bool AcceptKeyword(const char* kw) {
    if (!PeekKeyword(kw)) return false;
    ++pos_;
    return true;
  }

  Status Expect(TokenKind kind) {
    if (!Accept(kind)) {
      return Status::InvalidArgument("syntax error at offset " +
                                     std::to_string(Peek().offset));
    }
    return Status::OK();
  }

  Status ExpectKeyword(const char* kw) {
    if (!AcceptKeyword(kw)) {
      return Status::InvalidArgument(std::string("expected ") + kw +
                                     " at offset " +
                                     std::to_string(Peek().offset));
    }
    return Status::OK();
  }

  Status Error(const std::string& message) {
    return Status::InvalidArgument(message + " at offset " +
                                   std::to_string(Peek().offset));
  }

  StatusOr<ColumnRef> ParseColumn() {
    if (Peek().kind != TokenKind::kIdentifier) {
      return Error("expected column name");
    }
    ColumnRef ref;
    ref.column = Next().text;
    if (Accept(TokenKind::kDot)) {
      if (Peek().kind != TokenKind::kIdentifier) {
        return Error("expected column after '.'");
      }
      ref.table = ref.column;
      ref.column = Next().text;
    }
    return ref;
  }

  StatusOr<Predicate> ParsePredicate() {
    Predicate pred;
    auto lhs = ParseColumn();
    if (!lhs.ok()) return lhs.status();
    pred.lhs = *lhs;
    if (Status s = Expect(TokenKind::kEquals); !s.ok()) return s;
    if (Peek().kind == TokenKind::kNumber) {
      pred.rhs_literal = Next().number;
    } else if (Peek().kind == TokenKind::kString) {
      pred.rhs_literal = Next().text;
      pred.rhs_literal_is_string = true;
    } else {
      auto rhs = ParseColumn();
      if (!rhs.ok()) return rhs.status();
      pred.rhs_is_column = true;
      pred.rhs_column = *rhs;
    }
    return pred;
  }

  StatusOr<std::unique_ptr<Expr>> ParseExpr() {
    auto lhs = ParseTerm();
    if (!lhs.ok()) return lhs;
    std::unique_ptr<Expr> node = std::move(lhs).value();
    while (Peek().kind == TokenKind::kPlus ||
           Peek().kind == TokenKind::kMinus) {
      bool add = Next().kind == TokenKind::kPlus;
      auto rhs = ParseTerm();
      if (!rhs.ok()) return rhs;
      auto parent = std::make_unique<Expr>();
      parent->kind = add ? Expr::Kind::kAdd : Expr::Kind::kSub;
      parent->lhs = std::move(node);
      parent->rhs = std::move(rhs).value();
      node = std::move(parent);
    }
    return node;
  }

  StatusOr<std::unique_ptr<Expr>> ParseTerm() {
    auto lhs = ParseFactor();
    if (!lhs.ok()) return lhs;
    std::unique_ptr<Expr> node = std::move(lhs).value();
    while (Peek().kind == TokenKind::kStar ||
           Peek().kind == TokenKind::kSlash) {
      bool mul = Next().kind == TokenKind::kStar;
      auto rhs = ParseFactor();
      if (!rhs.ok()) return rhs;
      auto parent = std::make_unique<Expr>();
      parent->kind = mul ? Expr::Kind::kMul : Expr::Kind::kDiv;
      parent->lhs = std::move(node);
      parent->rhs = std::move(rhs).value();
      node = std::move(parent);
    }
    return node;
  }

  StatusOr<std::unique_ptr<Expr>> ParseFactor() {
    if (Accept(TokenKind::kLParen)) {
      if (paren_depth_ >= kMaxParenDepth) {
        return Error("expression too deeply nested");
      }
      ++paren_depth_;
      auto inner = ParseExpr();
      --paren_depth_;
      if (!inner.ok()) return inner;
      if (Status s = Expect(TokenKind::kRParen); !s.ok()) return s;
      return inner;
    }
    if (Peek().kind == TokenKind::kNumber) {
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kNumber;
      node->number = Next().number;
      return node;
    }
    auto column = ParseColumn();
    if (!column.ok()) return column.status();
    auto node = std::make_unique<Expr>();
    node->kind = Expr::Kind::kColumn;
    node->column = *column;
    return node;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int paren_depth_ = 0;
};

}  // namespace

StatusOr<SelectStatement> Parse(std::string_view query) {
  auto tokens = Tokenize(query);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value());
  return parser.ParseStatement();
}

}  // namespace provabs::sql
