#include "abstraction/valid_variable_set.h"

#include <algorithm>

namespace provabs {

ValidVariableSet ValidVariableSet::AllLeaves(
    const AbstractionForest& forest) {
  ValidVariableSet vvs;
  for (uint32_t t = 0; t < forest.tree_count(); ++t) {
    for (NodeIndex leaf : forest.tree(t).leaves()) {
      vvs.Add(NodeRef{t, leaf});
    }
  }
  return vvs;
}

ValidVariableSet ValidVariableSet::AllRoots(const AbstractionForest& forest) {
  ValidVariableSet vvs;
  for (uint32_t t = 0; t < forest.tree_count(); ++t) {
    vvs.Add(NodeRef{t, forest.tree(t).root()});
  }
  return vvs;
}

Status ValidVariableSet::Validate(const AbstractionForest& forest) const {
  // Per tree: the chosen nodes' leaf ranges must exactly tile [0, #leaves).
  for (uint32_t t = 0; t < forest.tree_count(); ++t) {
    const AbstractionTree& tree = forest.tree(t);
    std::vector<std::pair<uint32_t, uint32_t>> ranges;
    for (const NodeRef& ref : nodes_) {
      if (ref.tree != t) continue;
      if (ref.node >= tree.node_count()) {
        return Status::InvalidArgument("VVS node index out of range");
      }
      const auto& n = tree.node(ref.node);
      ranges.emplace_back(n.leaf_begin, n.leaf_end);
    }
    std::sort(ranges.begin(), ranges.end());
    uint32_t expected_begin = 0;
    for (const auto& [b, e] : ranges) {
      if (b != expected_begin) {
        return Status::InvalidArgument(
            b < expected_begin
                ? "VVS contains comparable nodes (overlapping cover)"
                : "VVS does not cover every leaf");
      }
      expected_begin = e;
    }
    if (expected_begin != tree.leaves().size()) {
      return Status::InvalidArgument("VVS does not cover every leaf");
    }
  }
  return Status::OK();
}

std::unordered_map<VariableId, VariableId> ValidVariableSet::SubstitutionMap(
    const AbstractionForest& forest) const {
  std::unordered_map<VariableId, VariableId> map;
  for (const NodeRef& ref : nodes_) {
    const AbstractionTree& tree = forest.tree(ref.tree);
    const auto& chosen = tree.node(ref.node);
    for (uint32_t i = chosen.leaf_begin; i < chosen.leaf_end; ++i) {
      NodeIndex leaf = tree.leaves()[i];
      map[tree.node(leaf).label] = chosen.label;
    }
  }
  return map;
}

PolynomialSet ValidVariableSet::Apply(const AbstractionForest& forest,
                                      const PolynomialSet& polys,
                                      CoefficientCombine combine) const {
  auto map = SubstitutionMap(forest);
  return polys.MapVariables(SubstitutionFn(map), combine);
}

std::string ValidVariableSet::ToString(const AbstractionForest& forest,
                                       const VariableTable& vars) const {
  std::vector<NodeRef> sorted = nodes_;
  std::sort(sorted.begin(), sorted.end());
  std::string s = "{";
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) s += ", ";
    s += vars.NameOf(forest.tree(sorted[i].tree).node(sorted[i].node).label);
  }
  s += "}";
  return s;
}

std::function<VariableId(VariableId)> SubstitutionFn(
    const std::unordered_map<VariableId, VariableId>& map) {
  return [&map](VariableId v) {
    auto it = map.find(v);
    return it == map.end() ? v : it->second;
  };
}

}  // namespace provabs
