#ifndef PROVABS_ABSTRACTION_LOSS_H_
#define PROVABS_ABSTRACTION_LOSS_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "abstraction/abstraction_forest.h"
#include "abstraction/abstraction_tree.h"
#include "abstraction/valid_variable_set.h"
#include "core/polynomial_set.h"

namespace provabs {

/// The two loss measures of §3.1: monomial loss ML(S) = |P|_M − |P↓S|_M and
/// variable loss VL(S) = |P|_V − |P↓S|_V.
struct LossReport {
  size_t monomial_loss = 0;
  size_t variable_loss = 0;

  friend bool operator==(const LossReport& a, const LossReport& b) {
    return a.monomial_loss == b.monomial_loss &&
           a.variable_loss == b.variable_loss;
  }
};

/// Reference implementation: applies the VVS and re-counts. O(|P|_M) per
/// call — used by tests, the brute-force baseline, and as the "naive"
/// arm of the ML-computation ablation benchmark.
LossReport ComputeLossNaive(const PolynomialSet& polys,
                            const AbstractionForest& forest,
                            const ValidVariableSet& vvs);

/// The §4.1 "Efficient ML computation" index, built once per
/// (polynomial set, tree) pair in a single pass over the polynomials.
///
/// For every tree leaf l it stores the residual keys
///   { hash(polynomial id, M with l replaced by a sentinel) :
///     M a monomial containing l },
/// so the monomial loss of abstracting node v with descendant leaves
/// l_0..l_m is  Σ_i |D[l_i]| − |∪_i D[l_i]|  — no re-traversal of the
/// polynomials per node. Residual identity uses 64-bit hashing; collisions
/// are possible in principle but astronomically unlikely, and the exact
/// ComputeLossNaive() is available wherever certainty is required.
class LeafResidualIndex {
 public:
  /// Builds the index for `tree` over `polys`. The tree must be compatible
  /// with the polynomials (≤1 tree variable per monomial).
  LeafResidualIndex(const PolynomialSet& polys, const AbstractionTree& tree);

  /// Loss of the singleton VVS {v} relative to the ORIGINAL polynomials:
  /// ml = monomials merged away by grouping all leaves below v;
  /// vl = (#present descendant leaves − 1), clamped at 0.
  LossReport NodeLoss(NodeIndex v) const;

  /// Number of leaves below `v` whose variable actually occurs in the
  /// polynomials.
  size_t PresentLeavesBelow(NodeIndex v) const;

  /// Total residual keys stored (diagnostics).
  size_t TotalKeys() const;

 private:
  const AbstractionTree* tree_;
  /// keys_by_leafpos_[i] = residual keys of the i'th leaf in tree DFS leaf
  /// order (position in tree.leaves()).
  std::vector<std::vector<uint64_t>> keys_by_leafpos_;
};

}  // namespace provabs

#endif  // PROVABS_ABSTRACTION_LOSS_H_
