#ifndef PROVABS_ABSTRACTION_LOSS_H_
#define PROVABS_ABSTRACTION_LOSS_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "abstraction/abstraction_forest.h"
#include "abstraction/abstraction_tree.h"
#include "abstraction/valid_variable_set.h"
#include "core/polynomial_set.h"

namespace provabs {

/// The two loss measures of §3.1: monomial loss ML(S) = |P|_M − |P↓S|_M and
/// variable loss VL(S) = |P|_V − |P↓S|_V.
struct LossReport {
  size_t monomial_loss = 0;
  size_t variable_loss = 0;

  friend bool operator==(const LossReport& a, const LossReport& b) {
    return a.monomial_loss == b.monomial_loss &&
           a.variable_loss == b.variable_loss;
  }
};

/// Reference implementation: applies the VVS and re-counts. O(|P|_M) per
/// call — used by tests, the brute-force baseline, and as the "naive"
/// arm of the ML-computation ablation benchmark.
LossReport ComputeLossNaive(const PolynomialSet& polys,
                            const AbstractionForest& forest,
                            const ValidVariableSet& vvs);

/// The §4.1 "Efficient ML computation" index, built once per
/// (polynomial set, tree) pair in a single pass over the polynomials.
///
/// For every tree leaf l it stores the residual keys
///   { hash(polynomial id, M with l replaced by a sentinel) :
///     M a monomial containing l },
/// so the monomial loss of abstracting node v with descendant leaves
/// l_0..l_m is  Σ_i |D[l_i]| − |∪_i D[l_i]|  — no re-traversal of the
/// polynomials per node. Residual identity uses 64-bit hashing; collisions
/// are possible in principle but astronomically unlikely, and the exact
/// ComputeLossNaive() is available wherever certainty is required.
/// Storage is CSR: one contiguous key array grouped by leaf position plus
/// an offsets array, so NodeLoss — the DP inner loop — walks one
/// sequential range per node (tree leaves are DFS-contiguous below every
/// node) instead of chasing a vector-of-vectors. Distinctness is counted
/// by sort+unique over a reused scratch buffer rather than a hash set:
/// same asymptotics in practice, strictly sequential memory traffic.
///
/// Incremental updates: AppendPolynomials indexes polynomials added after
/// the build into per-leaf overflow vectors (the CSR body is immutable),
/// which NodeLoss folds in. Overflow stays tiny — it holds one delta's
/// worth of keys while the incremental DP patches; a full rebuild
/// re-flattens everything.
class LeafResidualIndex {
 public:
  /// Builds the index for `tree` over `polys`. The tree must be compatible
  /// with the polynomials (≤1 tree variable per monomial).
  LeafResidualIndex(const PolynomialSet& polys, const AbstractionTree& tree);

  /// Loss of the singleton VVS {v} relative to the ORIGINAL polynomials:
  /// ml = monomials merged away by grouping all leaves below v;
  /// vl = (#present descendant leaves − 1), clamped at 0.
  LossReport NodeLoss(NodeIndex v) const;

  /// Number of leaves below `v` whose variable actually occurs in the
  /// polynomials.
  size_t PresentLeavesBelow(NodeIndex v) const;

  /// Total residual keys stored (diagnostics).
  size_t TotalKeys() const;

  /// What one AppendPolynomials call changed, in enough detail to patch
  /// previously computed NodeLoss values without re-sorting whole key
  /// ranges: the dirty leaf positions (sorted, distinct) and the keys this
  /// append added at each.
  struct AppendDelta {
    std::vector<uint32_t> dirty;
    std::vector<std::vector<uint64_t>> new_keys;  ///< Parallel to `dirty`.
  };

  /// Indexes the polynomials appended since the build (or the previous
  /// append): [indexed_count, polys.count()). `polys` must be the built
  /// set plus appends — the already-indexed prefix must be unchanged.
  /// Returns the dirty set the incremental DP re-solves above.
  AppendDelta AppendPolynomials(const PolynomialSet& polys);

  /// Patches a NodeLoss value computed BEFORE the latest AppendPolynomials
  /// call, given that call's delta: ml grows by (keys appended below v) −
  /// (distinct appended keys new below v), and vl tracks leaves below v
  /// that first became present. O(keys below v) worst case — a sequential
  /// membership scan, no sort — and O(1) when no dirty leaf is below v.
  /// Equals NodeLoss(v) recomputed from scratch, by construction.
  LossReport PatchNodeLoss(NodeIndex v, LossReport before,
                           const AppendDelta& delta) const;

  /// Number of polynomials this index has consumed.
  size_t indexed_count() const { return indexed_count_; }

  /// Re-points the index at `tree` — for retained indexes copied into a
  /// context where the original tree object is gone. The caller must have
  /// verified the new tree is shape-identical (same node count and leaf
  /// labels in DFS order); the stored keys and offsets are only meaningful
  /// against that exact shape.
  void Rebind(const AbstractionTree& tree) { tree_ = &tree; }

 private:
  void IndexPolynomial(size_t poly_index, const Polynomial& poly,
                       std::vector<std::vector<uint64_t>>& sink) const;

  const AbstractionTree* tree_;
  /// CSR body: keys_[offsets_[i] .. offsets_[i+1]) = residual keys of the
  /// i'th leaf in tree DFS leaf order (position in tree.leaves()).
  std::vector<uint64_t> keys_;
  std::vector<uint32_t> offsets_;
  /// Keys from AppendPolynomials, per leaf position; folded into every
  /// query alongside the CSR body.
  std::vector<std::vector<uint64_t>> overflow_by_leafpos_;
  /// Leaf label -> position in tree.leaves(); retained for appends.
  std::unordered_map<VariableId, uint32_t> leafpos_;
  size_t indexed_count_ = 0;
};

}  // namespace provabs

#endif  // PROVABS_ABSTRACTION_LOSS_H_
