#ifndef PROVABS_ABSTRACTION_CUT_COUNTER_H_
#define PROVABS_ABSTRACTION_CUT_COUNTER_H_

#include <cstdint>

#include "abstraction/abstraction_forest.h"
#include "abstraction/abstraction_tree.h"

namespace provabs {

/// Number of valid variable sets (cuts) of a tree, computed by the
/// recurrence  cuts(leaf) = 1,  cuts(v) = 1 + Π_c cuts(c).
/// Table 2 of the paper reports these counts per tree type; they grow
/// doubly-exponentially, so we expose both an exact saturating counter and
/// a floating-point one for display.
///
/// Saturates at kSaturated instead of overflowing.
uint64_t CountCutsExact(const AbstractionTree& tree);

/// Floating-point cut count (matches Table 2's "1.84467E+19"-style values).
double CountCutsApprox(const AbstractionTree& tree);

/// Product over the forest's trees (a forest cut chooses a cut per tree).
double CountForestCutsApprox(const AbstractionForest& forest);

inline constexpr uint64_t kSaturated = 0xFFFFFFFFFFFFFFFFull;

}  // namespace provabs

#endif  // PROVABS_ABSTRACTION_CUT_COUNTER_H_
