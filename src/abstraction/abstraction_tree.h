#ifndef PROVABS_ABSTRACTION_ABSTRACTION_TREE_H_
#define PROVABS_ABSTRACTION_ABSTRACTION_TREE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "core/polynomial_set.h"
#include "core/variable.h"

namespace provabs {

/// Index of a node within one abstraction tree.
using NodeIndex = uint32_t;
inline constexpr NodeIndex kInvalidNode = 0xFFFFFFFFu;

/// A rooted labeled tree over provenance variables (§2.2). Leaves are
/// labeled with variables occurring in the polynomials; internal nodes are
/// labeled with meta-variables. Choosing an internal node in a cut replaces
/// all its descendant leaves by its meta-variable.
///
/// Nodes are stored in a flat array in DFS (pre)order, and each node records
/// the contiguous range of descendant leaves in a separate leaf array. This
/// makes "all leaves below v" an O(1) range lookup and avoids pointer-chased
/// tree walks in the inner loops of the compression algorithms.
class AbstractionTree {
 public:
  struct Node {
    VariableId label = kInvalidVariable;
    NodeIndex parent = kInvalidNode;
    std::vector<NodeIndex> children;
    /// Range [leaf_begin, leaf_end) into leaves() covering this subtree.
    uint32_t leaf_begin = 0;
    uint32_t leaf_end = 0;
    uint32_t depth = 0;

    bool is_leaf() const { return children.empty(); }
    uint32_t leaf_count() const { return leaf_end - leaf_begin; }
  };

  AbstractionTree() = default;

  /// Number of nodes (internal + leaves).
  size_t node_count() const { return nodes_.size(); }

  /// The root is always node 0 in a non-empty tree.
  NodeIndex root() const { return 0; }

  bool empty() const { return nodes_.empty(); }

  const Node& node(NodeIndex i) const { return nodes_[i]; }

  /// Leaf node indices of the tree, in DFS order. node(leaves()[i]) is a leaf.
  const std::vector<NodeIndex>& leaves() const { return leaf_order_; }

  /// V(T): labels of all nodes.
  std::vector<VariableId> AllLabels() const;

  /// L(T): labels of the leaves only.
  std::vector<VariableId> LeafLabels() const;

  /// Node index labeled `label`, or kInvalidNode.
  NodeIndex FindLabel(VariableId label) const;

  /// True iff `descendant` is in the subtree of `ancestor` (or equal):
  /// the ≤_T relation of §2.3.
  bool IsDescendantOrSelf(NodeIndex descendant, NodeIndex ancestor) const;

  /// Height of the tree (root-to-deepest-leaf edge count).
  uint32_t Height() const;

  /// Maximum number of children of any node (the `w` of Proposition 14).
  uint32_t Width() const;

  /// Returns a copy with every leaf whose label does NOT occur in `polys`
  /// removed, and unary/empty internal chains collapsed (footnote 1 of §3.1:
  /// "clean" the tree of redundant nodes). Internal nodes left with no
  /// leaves are removed entirely; the root is preserved if any leaf remains.
  StatusOr<AbstractionTree> PruneToPolynomials(
      const PolynomialSet& polys) const;

  /// Verifies compatibility with `polys` (§2.2): every monomial of every
  /// polynomial contains at most one node label of this tree, and internal
  /// (meta-variable) labels do not occur in the polynomials. `first_poly`
  /// starts the scan mid-set for callers that already validated the prefix
  /// (the incremental recompress checks only a delta's appended suffix —
  /// Add is append-only, so a once-checked prefix stays compatible).
  Status CheckCompatible(const PolynomialSet& polys,
                         size_t first_poly = 0) const;

  /// Renders an indented textual form using names from `vars` (debugging).
  std::string ToString(const VariableTable& vars) const;

 private:
  friend class AbstractionTreeBuilder;

  std::vector<Node> nodes_;
  std::vector<NodeIndex> leaf_order_;
};

/// Incremental builder. Typical use:
///
///   AbstractionTreeBuilder b(vars);
///   auto root = b.AddRoot("Plans");
///   auto biz = b.AddChild(root, "Business");
///   b.AddChild(biz, "b1");
///   ...
///   AbstractionTree tree = std::move(b).Build();
///
/// Build() finalizes DFS order, leaf ranges and depths.
class AbstractionTreeBuilder {
 public:
  explicit AbstractionTreeBuilder(VariableTable& vars) : vars_(&vars) {}

  /// Creates the root. Must be called exactly once, first.
  NodeIndex AddRoot(std::string_view label);

  /// Adds a child labeled `label` under `parent`.
  NodeIndex AddChild(NodeIndex parent, std::string_view label);

  /// Finalizes the tree. Aborts if no root was added.
  AbstractionTree Build() &&;

 private:
  struct ProtoNode {
    VariableId label;
    NodeIndex parent;
    std::vector<NodeIndex> children;
  };

  VariableTable* vars_;
  std::vector<ProtoNode> proto_;
};

}  // namespace provabs

#endif  // PROVABS_ABSTRACTION_ABSTRACTION_TREE_H_
