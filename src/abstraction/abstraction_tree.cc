#include "abstraction/abstraction_tree.h"

#include <algorithm>
#include <unordered_set>

#include "common/macros.h"

namespace provabs {

std::vector<VariableId> AbstractionTree::AllLabels() const {
  std::vector<VariableId> labels;
  labels.reserve(nodes_.size());
  for (const Node& n : nodes_) labels.push_back(n.label);
  return labels;
}

std::vector<VariableId> AbstractionTree::LeafLabels() const {
  std::vector<VariableId> labels;
  labels.reserve(leaf_order_.size());
  for (NodeIndex i : leaf_order_) labels.push_back(nodes_[i].label);
  return labels;
}

NodeIndex AbstractionTree::FindLabel(VariableId label) const {
  for (NodeIndex i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].label == label) return i;
  }
  return kInvalidNode;
}

bool AbstractionTree::IsDescendantOrSelf(NodeIndex descendant,
                                         NodeIndex ancestor) const {
  // Thanks to DFS numbering with contiguous leaf ranges, ancestry is a range
  // containment test on leaf ranges plus the pre-order index range; the
  // simple parent walk below is fast enough and obviously correct.
  NodeIndex cur = descendant;
  while (cur != kInvalidNode) {
    if (cur == ancestor) return true;
    cur = nodes_[cur].parent;
  }
  return false;
}

uint32_t AbstractionTree::Height() const {
  uint32_t h = 0;
  for (const Node& n : nodes_) h = std::max(h, n.depth);
  return h;
}

uint32_t AbstractionTree::Width() const {
  uint32_t w = 0;
  for (const Node& n : nodes_) {
    w = std::max(w, static_cast<uint32_t>(n.children.size()));
  }
  return w;
}

Status AbstractionTree::CheckCompatible(const PolynomialSet& polys,
                                        size_t first_poly) const {
  std::unordered_set<VariableId> leaf_labels;
  std::unordered_set<VariableId> internal_labels;
  for (const Node& n : nodes_) {
    if (n.is_leaf()) {
      leaf_labels.insert(n.label);
    } else {
      internal_labels.insert(n.label);
    }
  }
  for (size_t i = first_poly; i < polys.count(); ++i) {
    const Polynomial& p = polys[i];
    for (const Monomial& m : p.monomials()) {
      int tree_vars_in_monomial = 0;
      for (const Factor& f : m.factors()) {
        if (internal_labels.count(f.var) > 0) {
          return Status::InvalidArgument(
              "meta-variable label occurs in a polynomial");
        }
        if (leaf_labels.count(f.var) > 0) ++tree_vars_in_monomial;
      }
      if (tree_vars_in_monomial > 1) {
        return Status::InvalidArgument(
            "a monomial contains more than one variable of the tree");
      }
    }
  }
  return Status::OK();
}

StatusOr<AbstractionTree> AbstractionTree::PruneToPolynomials(
    const PolynomialSet& polys) const {
  std::unordered_set<VariableId> present = polys.Variables();

  // keep[i]: subtree of i contains at least one leaf whose label is present.
  std::vector<char> keep(nodes_.size(), 0);
  // Nodes are in DFS pre-order, so children follow parents; iterate in
  // reverse for a post-order accumulation.
  for (size_t i = nodes_.size(); i-- > 0;) {
    const Node& n = nodes_[i];
    if (n.is_leaf()) {
      keep[i] = present.count(n.label) > 0 ? 1 : 0;
    } else {
      for (NodeIndex c : n.children) {
        if (keep[c]) keep[i] = 1;
      }
    }
  }
  if (nodes_.empty() || !keep[0]) {
    return Status::Infeasible("no tree leaf occurs in the polynomials");
  }

  // Rebuild directly (ids are already interned, so no VariableTable is
  // needed), skipping dropped subtrees and collapsing internal nodes left
  // with a single kept child — such nodes offer no abstraction choice beyond
  // the child itself. The root is never collapsed so that a "group
  // everything" cut always exists.
  AbstractionTree out;
  struct Frame {
    NodeIndex src;
    NodeIndex dst_parent;
  };
  std::vector<Frame> stack;
  stack.push_back({0, kInvalidNode});
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    NodeIndex cur = f.src;
    auto kept_children = [&](NodeIndex i) {
      std::vector<NodeIndex> out_children;
      for (NodeIndex c : nodes_[i].children) {
        if (keep[c]) out_children.push_back(c);
      }
      return out_children;
    };
    std::vector<NodeIndex> kept = kept_children(cur);
    while (!nodes_[cur].is_leaf() && kept.size() == 1 &&
           f.dst_parent != kInvalidNode) {
      cur = kept[0];
      kept = kept_children(cur);
    }
    NodeIndex dst = static_cast<NodeIndex>(out.nodes_.size());
    Node copy;
    copy.label = nodes_[cur].label;
    copy.parent = f.dst_parent;
    out.nodes_.push_back(copy);
    if (f.dst_parent != kInvalidNode) {
      out.nodes_[f.dst_parent].children.push_back(dst);
    }
    // Push children in reverse so DFS pre-order is preserved.
    for (size_t i = kept.size(); i-- > 0;) {
      stack.push_back({kept[i], dst});
    }
  }

  // Recompute DFS metadata (depth, leaf ranges) via an explicit DFS.
  out.leaf_order_.clear();
  struct Visit {
    NodeIndex node;
    bool post;
  };
  std::vector<Visit> visits;
  visits.push_back({0, false});
  out.nodes_[0].depth = 0;
  while (!visits.empty()) {
    Visit v = visits.back();
    visits.pop_back();
    Node& n = out.nodes_[v.node];
    if (!v.post) {
      n.leaf_begin = static_cast<uint32_t>(out.leaf_order_.size());
      if (n.is_leaf()) {
        out.leaf_order_.push_back(v.node);
        n.leaf_end = static_cast<uint32_t>(out.leaf_order_.size());
      } else {
        visits.push_back({v.node, true});
        for (size_t i = n.children.size(); i-- > 0;) {
          out.nodes_[n.children[i]].depth = n.depth + 1;
          visits.push_back({n.children[i], false});
        }
      }
    } else {
      n.leaf_end = static_cast<uint32_t>(out.leaf_order_.size());
    }
  }
  return out;
}

std::string AbstractionTree::ToString(const VariableTable& vars) const {
  std::string s;
  struct Frame {
    NodeIndex node;
    uint32_t indent;
  };
  std::vector<Frame> stack;
  if (!nodes_.empty()) stack.push_back({0, 0});
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    s.append(f.indent * 2, ' ');
    s += vars.NameOf(nodes_[f.node].label);
    s += '\n';
    const Node& n = nodes_[f.node];
    for (size_t i = n.children.size(); i-- > 0;) {
      stack.push_back({n.children[i], f.indent + 1});
    }
  }
  return s;
}

NodeIndex AbstractionTreeBuilder::AddRoot(std::string_view label) {
  PROVABS_CHECK(proto_.empty());
  proto_.push_back(ProtoNode{vars_->Intern(label), kInvalidNode, {}});
  return 0;
}

NodeIndex AbstractionTreeBuilder::AddChild(NodeIndex parent,
                                           std::string_view label) {
  PROVABS_CHECK(parent < proto_.size());
  NodeIndex idx = static_cast<NodeIndex>(proto_.size());
  proto_.push_back(ProtoNode{vars_->Intern(label), parent, {}});
  proto_[parent].children.push_back(idx);
  return idx;
}

AbstractionTree AbstractionTreeBuilder::Build() && {
  PROVABS_CHECK(!proto_.empty());
  AbstractionTree tree;
  tree.nodes_.resize(proto_.size());

  // Re-number nodes into DFS pre-order.
  std::vector<NodeIndex> order;  // order[new] = old
  order.reserve(proto_.size());
  std::vector<NodeIndex> new_of(proto_.size(), kInvalidNode);
  std::vector<NodeIndex> stack;
  stack.push_back(0);
  while (!stack.empty()) {
    NodeIndex old = stack.back();
    stack.pop_back();
    new_of[old] = static_cast<NodeIndex>(order.size());
    order.push_back(old);
    const auto& children = proto_[old].children;
    for (size_t i = children.size(); i-- > 0;) stack.push_back(children[i]);
  }
  PROVABS_CHECK(order.size() == proto_.size());

  for (NodeIndex n = 0; n < order.size(); ++n) {
    const ProtoNode& src = proto_[order[n]];
    AbstractionTree::Node& dst = tree.nodes_[n];
    dst.label = src.label;
    dst.parent =
        src.parent == kInvalidNode ? kInvalidNode : new_of[src.parent];
    dst.children.reserve(src.children.size());
    for (NodeIndex c : src.children) dst.children.push_back(new_of[c]);
  }

  // Depth + leaf ranges via DFS with post-visit.
  struct Visit {
    NodeIndex node;
    bool post;
  };
  std::vector<Visit> visits;
  visits.push_back({0, false});
  tree.nodes_[0].depth = 0;
  while (!visits.empty()) {
    Visit v = visits.back();
    visits.pop_back();
    AbstractionTree::Node& node = tree.nodes_[v.node];
    if (!v.post) {
      node.leaf_begin = static_cast<uint32_t>(tree.leaf_order_.size());
      if (node.is_leaf()) {
        tree.leaf_order_.push_back(v.node);
        node.leaf_end = static_cast<uint32_t>(tree.leaf_order_.size());
      } else {
        visits.push_back({v.node, true});
        for (size_t i = node.children.size(); i-- > 0;) {
          tree.nodes_[node.children[i]].depth = node.depth + 1;
          visits.push_back({node.children[i], false});
        }
      }
    } else {
      node.leaf_end = static_cast<uint32_t>(tree.leaf_order_.size());
    }
  }
  return tree;
}

}  // namespace provabs
