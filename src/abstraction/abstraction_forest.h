#ifndef PROVABS_ABSTRACTION_ABSTRACTION_FOREST_H_
#define PROVABS_ABSTRACTION_ABSTRACTION_FOREST_H_

#include <unordered_map>
#include <vector>

#include "abstraction/abstraction_tree.h"
#include "common/status.h"
#include "core/polynomial_set.h"
#include "core/variable.h"

namespace provabs {

/// Identifies a node within a forest: (tree index, node index).
struct NodeRef {
  uint32_t tree = 0;
  NodeIndex node = 0;

  friend bool operator==(const NodeRef& a, const NodeRef& b) {
    return a.tree == b.tree && a.node == b.node;
  }
  friend bool operator<(const NodeRef& a, const NodeRef& b) {
    if (a.tree != b.tree) return a.tree < b.tree;
    return a.node < b.node;
  }
};

/// A valid abstraction forest (§2.3): a set of abstraction trees with
/// pairwise-disjoint label sets. Owns its trees; provides label lookup
/// across trees and forest-level validity/compatibility checks.
class AbstractionForest {
 public:
  AbstractionForest() = default;

  /// Takes ownership of `trees`. Call Validate() afterwards.
  explicit AbstractionForest(std::vector<AbstractionTree> trees);

  /// Adds one tree. Invalidates previous Validate() results.
  void AddTree(AbstractionTree tree);

  size_t tree_count() const { return trees_.size(); }
  const AbstractionTree& tree(size_t i) const { return trees_[i]; }
  const std::vector<AbstractionTree>& trees() const { return trees_; }

  /// Checks label disjointness across trees (the validity condition of
  /// Definition in §2.3) and per-tree structural sanity.
  Status Validate() const;

  /// Checks that every tree is compatible with `polys` (§2.2).
  Status CheckCompatible(const PolynomialSet& polys) const;

  /// Finds the node carrying `label` anywhere in the forest, or returns
  /// kNotFound (tree == kInvalidTreeIndex).
  NodeRef FindLabel(VariableId label) const;

  /// Total node count across trees.
  size_t TotalNodes() const;

  static constexpr uint32_t kInvalidTreeIndex = 0xFFFFFFFFu;

 private:
  std::vector<AbstractionTree> trees_;
  mutable std::unordered_map<VariableId, NodeRef> label_index_;
  mutable bool index_dirty_ = true;

  void RebuildIndexIfNeeded() const;
};

}  // namespace provabs

#endif  // PROVABS_ABSTRACTION_ABSTRACTION_FOREST_H_
