#ifndef PROVABS_ABSTRACTION_VALID_VARIABLE_SET_H_
#define PROVABS_ABSTRACTION_VALID_VARIABLE_SET_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "abstraction/abstraction_forest.h"
#include "common/status.h"
#include "core/polynomial_set.h"
#include "core/variable.h"

namespace provabs {

/// A valid variable set (Definition 4): for each tree, a cut separating the
/// root from the leaves. Every leaf has exactly one ancestor-or-self among
/// the chosen nodes; chosen nodes are pairwise incomparable. Applying a VVS
/// replaces each leaf variable with the label of its chosen ancestor.
class ValidVariableSet {
 public:
  ValidVariableSet() = default;

  /// Constructs from explicit node choices (not yet validated).
  explicit ValidVariableSet(std::vector<NodeRef> nodes)
      : nodes_(std::move(nodes)) {}

  /// The trivial VVS selecting every leaf of every tree (identity
  /// abstraction, zero loss).
  static ValidVariableSet AllLeaves(const AbstractionForest& forest);

  /// The coarsest VVS selecting every root (maximal compression).
  static ValidVariableSet AllRoots(const AbstractionForest& forest);

  const std::vector<NodeRef>& nodes() const { return nodes_; }
  void Add(NodeRef ref) { nodes_.push_back(ref); }
  size_t size() const { return nodes_.size(); }

  /// Checks Definition 4 against `forest`: every leaf of every tree is
  /// covered by exactly one chosen node, and no chosen node is an ancestor
  /// of another.
  Status Validate(const AbstractionForest& forest) const;

  /// Builds the substitution: each leaf label maps to the label of its
  /// covering chosen node (identity for leaves chosen directly). Variables
  /// outside the forest are absent (treated as identity by Apply).
  std::unordered_map<VariableId, VariableId> SubstitutionMap(
      const AbstractionForest& forest) const;

  /// P↓S — applies the abstraction to a polynomial set. `combine` selects
  /// the coefficient semantics (kAdd for SUM/semiring provenance, kMin/kMax
  /// for MIN/MAX-aggregate provenance; see core/polynomial.h).
  PolynomialSet Apply(
      const AbstractionForest& forest, const PolynomialSet& polys,
      CoefficientCombine combine = CoefficientCombine::kAdd) const;

  /// Renders the chosen labels, e.g. "{SB, e, F, Y, v, p1, p2}".
  std::string ToString(const AbstractionForest& forest,
                       const VariableTable& vars) const;

 private:
  std::vector<NodeRef> nodes_;
};

/// Convenience: substitution function over a map with identity fallback.
/// Captures `map` by reference — `map` must outlive the returned function.
std::function<VariableId(VariableId)> SubstitutionFn(
    const std::unordered_map<VariableId, VariableId>& map);

}  // namespace provabs

#endif  // PROVABS_ABSTRACTION_VALID_VARIABLE_SET_H_
