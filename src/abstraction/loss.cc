#include "abstraction/loss.h"

#include <unordered_set>

#include "common/macros.h"

namespace provabs {

LossReport ComputeLossNaive(const PolynomialSet& polys,
                            const AbstractionForest& forest,
                            const ValidVariableSet& vvs) {
  PolynomialSet abstracted = vvs.Apply(forest, polys);
  LossReport r;
  r.monomial_loss = polys.SizeM() - abstracted.SizeM();
  r.variable_loss = polys.SizeV() - abstracted.SizeV();
  return r;
}

namespace {

// Sentinel standing for "the replaced tree variable" inside residual hashes.
constexpr VariableId kResidualSentinel = 0xFFFFFFFEu;

uint64_t HashResidual(size_t poly_index, const Monomial& m,
                      VariableId replaced) {
  uint64_t h = 0xCBF29CE484222325ULL ^ (poly_index * 0x9E3779B97F4A7C15ULL);
  auto mix = [&h](uint64_t x) {
    h ^= x;
    h *= 0x100000001B3ULL;
  };
  // Hash the residual in a canonical form: the remaining factors in their
  // (already sorted) order, then the replaced variable's exponent under the
  // sentinel LAST. Substituting the sentinel positionally instead would
  // make the hash depend on where the tree variable sorts among the other
  // factors, so equal residuals could hash differently when variable ids
  // interleave (this bit the TPC-H workloads, whose s/p ids alternate).
  uint32_t replaced_exp = 0;
  for (const Factor& f : m.factors()) {
    if (f.var == replaced) {
      replaced_exp = f.exp;
      continue;
    }
    mix(f.var);
    mix(f.exp);
  }
  mix(kResidualSentinel);
  mix(replaced_exp);
  return h;
}

}  // namespace

LeafResidualIndex::LeafResidualIndex(const PolynomialSet& polys,
                                     const AbstractionTree& tree)
    : tree_(&tree) {
  keys_by_leafpos_.resize(tree.leaves().size());

  // leaf label -> position in tree.leaves().
  std::unordered_map<VariableId, uint32_t> leafpos;
  leafpos.reserve(tree.leaves().size());
  for (uint32_t i = 0; i < tree.leaves().size(); ++i) {
    leafpos.emplace(tree.node(tree.leaves()[i]).label, i);
  }

  // One pass over the polynomials (the point of the optimization).
  for (size_t pi = 0; pi < polys.count(); ++pi) {
    for (const Monomial& m : polys[pi].monomials()) {
      for (const Factor& f : m.factors()) {
        auto it = leafpos.find(f.var);
        if (it == leafpos.end()) continue;
        keys_by_leafpos_[it->second].push_back(
            HashResidual(pi, m, f.var));
        // Compatibility guarantees at most one tree variable per monomial.
        break;
      }
    }
  }
}

LossReport LeafResidualIndex::NodeLoss(NodeIndex v) const {
  const auto& node = tree_->node(v);
  LossReport r;
  if (node.is_leaf() || node.leaf_count() <= 1) return r;

  size_t total = 0;
  size_t present = 0;
  std::unordered_set<uint64_t> distinct;
  for (uint32_t i = node.leaf_begin; i < node.leaf_end; ++i) {
    const auto& keys = keys_by_leafpos_[i];
    total += keys.size();
    if (!keys.empty()) ++present;
    distinct.insert(keys.begin(), keys.end());
  }
  r.monomial_loss = total - distinct.size();
  r.variable_loss = present > 0 ? present - 1 : 0;
  return r;
}

size_t LeafResidualIndex::PresentLeavesBelow(NodeIndex v) const {
  const auto& node = tree_->node(v);
  size_t present = 0;
  for (uint32_t i = node.leaf_begin; i < node.leaf_end; ++i) {
    if (!keys_by_leafpos_[i].empty()) ++present;
  }
  return present;
}

size_t LeafResidualIndex::TotalKeys() const {
  size_t total = 0;
  for (const auto& keys : keys_by_leafpos_) total += keys.size();
  return total;
}

}  // namespace provabs
