#include "abstraction/loss.h"

#include <algorithm>
#include <unordered_set>

#include "common/macros.h"

namespace provabs {

LossReport ComputeLossNaive(const PolynomialSet& polys,
                            const AbstractionForest& forest,
                            const ValidVariableSet& vvs) {
  PolynomialSet abstracted = vvs.Apply(forest, polys);
  LossReport r;
  r.monomial_loss = polys.SizeM() - abstracted.SizeM();
  r.variable_loss = polys.SizeV() - abstracted.SizeV();
  return r;
}

namespace {

// Sentinel standing for "the replaced tree variable" inside residual hashes.
constexpr VariableId kResidualSentinel = 0xFFFFFFFEu;

uint64_t HashResidual(size_t poly_index, const Monomial& m,
                      VariableId replaced) {
  uint64_t h = 0xCBF29CE484222325ULL ^ (poly_index * 0x9E3779B97F4A7C15ULL);
  auto mix = [&h](uint64_t x) {
    h ^= x;
    h *= 0x100000001B3ULL;
  };
  // Hash the residual in a canonical form: the remaining factors in their
  // (already sorted) order, then the replaced variable's exponent under the
  // sentinel LAST. Substituting the sentinel positionally instead would
  // make the hash depend on where the tree variable sorts among the other
  // factors, so equal residuals could hash differently when variable ids
  // interleave (this bit the TPC-H workloads, whose s/p ids alternate).
  uint32_t replaced_exp = 0;
  for (const Factor& f : m.factors()) {
    if (f.var == replaced) {
      replaced_exp = f.exp;
      continue;
    }
    mix(f.var);
    mix(f.exp);
  }
  mix(kResidualSentinel);
  mix(replaced_exp);
  return h;
}

}  // namespace

void LeafResidualIndex::IndexPolynomial(
    size_t poly_index, const Polynomial& poly,
    std::vector<std::vector<uint64_t>>& sink) const {
  for (const Monomial& m : poly.monomials()) {
    for (const Factor& f : m.factors()) {
      auto it = leafpos_.find(f.var);
      if (it == leafpos_.end()) continue;
      sink[it->second].push_back(HashResidual(poly_index, m, f.var));
      // Compatibility guarantees at most one tree variable per monomial.
      break;
    }
  }
}

LeafResidualIndex::LeafResidualIndex(const PolynomialSet& polys,
                                     const AbstractionTree& tree)
    : tree_(&tree) {
  const size_t num_leaves = tree.leaves().size();
  overflow_by_leafpos_.resize(num_leaves);
  leafpos_.reserve(num_leaves);
  for (uint32_t i = 0; i < num_leaves; ++i) {
    leafpos_.emplace(tree.node(tree.leaves()[i]).label, i);
  }

  // One pass over the polynomials (the point of the optimization), staged
  // per leaf, then flattened into the CSR body the queries walk.
  std::vector<std::vector<uint64_t>> staged(num_leaves);
  for (size_t pi = 0; pi < polys.count(); ++pi) {
    IndexPolynomial(pi, polys[pi], staged);
  }
  indexed_count_ = polys.count();

  offsets_.resize(num_leaves + 1, 0);
  size_t total = 0;
  for (size_t i = 0; i < num_leaves; ++i) {
    offsets_[i] = static_cast<uint32_t>(total);
    total += staged[i].size();
  }
  offsets_[num_leaves] = static_cast<uint32_t>(total);
  keys_.reserve(total);
  for (const auto& leaf_keys : staged) {
    keys_.insert(keys_.end(), leaf_keys.begin(), leaf_keys.end());
  }
}

LeafResidualIndex::AppendDelta LeafResidualIndex::AppendPolynomials(
    const PolynomialSet& polys) {
  AppendDelta delta;
  if (polys.count() <= indexed_count_) return delta;
  std::vector<size_t> before(overflow_by_leafpos_.size());
  for (size_t i = 0; i < overflow_by_leafpos_.size(); ++i) {
    before[i] = overflow_by_leafpos_[i].size();
  }
  for (size_t pi = indexed_count_; pi < polys.count(); ++pi) {
    IndexPolynomial(pi, polys[pi], overflow_by_leafpos_);
  }
  indexed_count_ = polys.count();
  for (uint32_t i = 0; i < overflow_by_leafpos_.size(); ++i) {
    const auto& keys = overflow_by_leafpos_[i];
    if (keys.size() == before[i]) continue;
    delta.dirty.push_back(i);
    delta.new_keys.emplace_back(keys.begin() + before[i], keys.end());
  }
  return delta;
}

LossReport LeafResidualIndex::PatchNodeLoss(NodeIndex v, LossReport before,
                                            const AppendDelta& delta) const {
  const auto& node = tree_->node(v);
  // Mirrors NodeLoss's early-out: such nodes never lose anything, before
  // and after any append.
  if (node.is_leaf() || node.leaf_count() <= 1) return before;

  // Collect the appended keys landing below v, deduplicated and sorted so
  // the membership scan below can mark them by binary search.
  std::vector<uint64_t> added;
  size_t added_total = 0;
  for (size_t d = 0; d < delta.dirty.size(); ++d) {
    const uint32_t pos = delta.dirty[d];
    if (pos < node.leaf_begin || pos >= node.leaf_end) continue;
    added_total += delta.new_keys[d].size();
    added.insert(added.end(), delta.new_keys[d].begin(),
                 delta.new_keys[d].end());
  }
  if (added_total == 0) return before;
  std::sort(added.begin(), added.end());
  added.erase(std::unique(added.begin(), added.end()), added.end());

  // Mark which appended keys already existed below v BEFORE the append:
  // the CSR body plus each leaf's overflow minus this append's suffix.
  std::vector<char> existed(added.size(), 0);
  auto mark = [&](uint64_t key) {
    auto it = std::lower_bound(added.begin(), added.end(), key);
    if (it != added.end() && *it == key) existed[it - added.begin()] = 1;
  };
  for (uint32_t i = offsets_[node.leaf_begin]; i < offsets_[node.leaf_end];
       ++i) {
    mark(keys_[i]);
  }
  for (uint32_t i = node.leaf_begin; i < node.leaf_end; ++i) {
    const auto& overflow = overflow_by_leafpos_[i];
    size_t old_size = overflow.size();
    auto it = std::lower_bound(delta.dirty.begin(), delta.dirty.end(), i);
    if (it != delta.dirty.end() && *it == i) {
      old_size -= delta.new_keys[it - delta.dirty.begin()].size();
    }
    for (size_t j = 0; j < old_size; ++j) mark(overflow[j]);
  }
  size_t new_distinct = 0;
  for (char e : existed) {
    if (!e) ++new_distinct;
  }

  LossReport after;
  after.monomial_loss = before.monomial_loss + added_total - new_distinct;
  // At least one leaf below v gained keys, so the subtree is non-empty and
  // vl = present − 1 holds without the clamp.
  after.variable_loss = PresentLeavesBelow(v) - 1;
  return after;
}

LossReport LeafResidualIndex::NodeLoss(NodeIndex v) const {
  const auto& node = tree_->node(v);
  LossReport r;
  if (node.is_leaf() || node.leaf_count() <= 1) return r;

  // Reused across calls: the DP visits every internal node, and the
  // allocations would otherwise dominate small trees. thread_local keeps
  // const-callers safely concurrent.
  static thread_local std::vector<uint64_t> scratch;
  static thread_local std::unordered_set<uint64_t> scratch_set;
  scratch.clear();

  // One sequential CSR slice covers the whole leaf range.
  const uint32_t begin = offsets_[node.leaf_begin];
  const uint32_t end = offsets_[node.leaf_end];
  scratch.assign(keys_.begin() + begin, keys_.begin() + end);

  size_t present = 0;
  for (uint32_t i = node.leaf_begin; i < node.leaf_end; ++i) {
    const auto& extra = overflow_by_leafpos_[i];
    scratch.insert(scratch.end(), extra.begin(), extra.end());
    if (offsets_[i + 1] != offsets_[i] || !extra.empty()) ++present;
  }
  const size_t total = scratch.size();
  // Distinctness: sort+unique is fastest while the gathered slice is
  // cache-resident, but its n·log n overtakes hashing at the big duplicate-
  // heavy nodes near the root (measured crossover ~1k keys on the standard
  // workloads), so large slices count through a reused hash set instead.
  size_t distinct;
  if (total <= 1024) {
    std::sort(scratch.begin(), scratch.end());
    distinct = static_cast<size_t>(
        std::unique(scratch.begin(), scratch.end()) - scratch.begin());
  } else {
    scratch_set.clear();
    scratch_set.insert(scratch.begin(), scratch.end());
    distinct = scratch_set.size();
  }
  r.monomial_loss = total - distinct;
  r.variable_loss = present > 0 ? present - 1 : 0;
  return r;
}

size_t LeafResidualIndex::PresentLeavesBelow(NodeIndex v) const {
  const auto& node = tree_->node(v);
  size_t present = 0;
  for (uint32_t i = node.leaf_begin; i < node.leaf_end; ++i) {
    if (offsets_[i + 1] != offsets_[i] || !overflow_by_leafpos_[i].empty()) {
      ++present;
    }
  }
  return present;
}

size_t LeafResidualIndex::TotalKeys() const {
  size_t total = keys_.size();
  for (const auto& keys : overflow_by_leafpos_) total += keys.size();
  return total;
}

}  // namespace provabs
