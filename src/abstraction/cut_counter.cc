#include "abstraction/cut_counter.h"

#include <vector>

namespace provabs {

namespace {

// Multiplies with saturation at kSaturated.
uint64_t SatMul(uint64_t a, uint64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a > kSaturated / b) return kSaturated;
  return a * b;
}

uint64_t SatAdd(uint64_t a, uint64_t b) {
  if (a > kSaturated - b) return kSaturated;
  return a + b;
}

}  // namespace

uint64_t CountCutsExact(const AbstractionTree& tree) {
  if (tree.empty()) return 0;
  std::vector<uint64_t> cuts(tree.node_count(), 0);
  // Nodes are in DFS pre-order: children have larger indices than parents,
  // so a reverse scan is a post-order accumulation.
  for (size_t i = tree.node_count(); i-- > 0;) {
    const auto& n = tree.node(static_cast<NodeIndex>(i));
    if (n.is_leaf()) {
      cuts[i] = 1;
    } else {
      uint64_t prod = 1;
      for (NodeIndex c : n.children) prod = SatMul(prod, cuts[c]);
      cuts[i] = SatAdd(1, prod);
    }
  }
  return cuts[0];
}

double CountCutsApprox(const AbstractionTree& tree) {
  if (tree.empty()) return 0.0;
  std::vector<double> cuts(tree.node_count(), 0.0);
  for (size_t i = tree.node_count(); i-- > 0;) {
    const auto& n = tree.node(static_cast<NodeIndex>(i));
    if (n.is_leaf()) {
      cuts[i] = 1.0;
    } else {
      double prod = 1.0;
      for (NodeIndex c : n.children) prod *= cuts[c];
      cuts[i] = 1.0 + prod;
    }
  }
  return cuts[0];
}

double CountForestCutsApprox(const AbstractionForest& forest) {
  double prod = 1.0;
  for (const AbstractionTree& t : forest.trees()) prod *= CountCutsApprox(t);
  return prod;
}

}  // namespace provabs
