#include "abstraction/abstraction_forest.h"

namespace provabs {

AbstractionForest::AbstractionForest(std::vector<AbstractionTree> trees)
    : trees_(std::move(trees)) {}

void AbstractionForest::AddTree(AbstractionTree tree) {
  trees_.push_back(std::move(tree));
  index_dirty_ = true;
}

void AbstractionForest::RebuildIndexIfNeeded() const {
  if (!index_dirty_) return;
  label_index_.clear();
  for (uint32_t t = 0; t < trees_.size(); ++t) {
    for (NodeIndex n = 0; n < trees_[t].node_count(); ++n) {
      label_index_.emplace(trees_[t].node(n).label, NodeRef{t, n});
    }
  }
  index_dirty_ = false;
}

Status AbstractionForest::Validate() const {
  std::unordered_map<VariableId, uint32_t> seen;  // label -> tree
  for (uint32_t t = 0; t < trees_.size(); ++t) {
    if (trees_[t].empty()) {
      return Status::InvalidArgument("forest contains an empty tree");
    }
    for (NodeIndex n = 0; n < trees_[t].node_count(); ++n) {
      VariableId label = trees_[t].node(n).label;
      auto [it, inserted] = seen.emplace(label, t);
      if (!inserted) {
        return Status::InvalidArgument(
            "label occurs in two forest nodes (trees must be disjoint)");
      }
    }
  }
  return Status::OK();
}

Status AbstractionForest::CheckCompatible(const PolynomialSet& polys) const {
  for (const AbstractionTree& t : trees_) {
    Status s = t.CheckCompatible(polys);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

NodeRef AbstractionForest::FindLabel(VariableId label) const {
  RebuildIndexIfNeeded();
  auto it = label_index_.find(label);
  if (it == label_index_.end()) {
    return NodeRef{kInvalidTreeIndex, kInvalidNode};
  }
  return it->second;
}

size_t AbstractionForest::TotalNodes() const {
  size_t total = 0;
  for (const AbstractionTree& t : trees_) total += t.node_count();
  return total;
}

}  // namespace provabs
