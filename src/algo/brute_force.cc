#include "algo/brute_force.h"

#include <vector>

#include "abstraction/cut_counter.h"
#include "abstraction/loss.h"
#include "common/macros.h"

namespace provabs {

namespace internal {
namespace {

/// Materializes all cuts of the subtree rooted at `v` as node-index lists.
/// cuts(v) = {v} ∪ (product of children's cuts).
std::vector<std::vector<NodeIndex>> EnumerateCuts(const AbstractionTree& tree,
                                                  NodeIndex v) {
  std::vector<std::vector<NodeIndex>> result;
  result.push_back({v});
  const auto& node = tree.node(v);
  if (node.is_leaf()) return result;

  // Cartesian product of children's cut lists.
  std::vector<std::vector<std::vector<NodeIndex>>> child_cuts;
  child_cuts.reserve(node.children.size());
  for (NodeIndex c : node.children) {
    child_cuts.push_back(EnumerateCuts(tree, c));
  }
  std::vector<size_t> odometer(child_cuts.size(), 0);
  for (;;) {
    std::vector<NodeIndex> combined;
    for (size_t i = 0; i < child_cuts.size(); ++i) {
      const auto& cut = child_cuts[i][odometer[i]];
      combined.insert(combined.end(), cut.begin(), cut.end());
    }
    result.push_back(std::move(combined));
    size_t i = 0;
    while (i < odometer.size()) {
      if (++odometer[i] < child_cuts[i].size()) break;
      odometer[i] = 0;
      ++i;
    }
    if (i == odometer.size()) break;
  }
  return result;
}

}  // namespace

std::vector<std::vector<NodeIndex>> EnumerateTreeCuts(
    const AbstractionTree& tree) {
  return EnumerateCuts(tree, tree.root());
}

}  // namespace internal

StatusOr<CompressionResult> BruteForce(const PolynomialSet& polys,
                                       const AbstractionForest& forest,
                                       size_t bound_b,
                                       const BruteForceOptions& options) {
  Status compat = forest.CheckCompatible(polys);
  if (!compat.ok()) return compat;
  if (bound_b == 0) {
    return Status::InvalidArgument("bound must be at least 1");
  }
  double total_cuts = CountForestCutsApprox(forest);
  if (total_cuts > static_cast<double>(options.max_cuts)) {
    return Status::OutOfRange("forest admits too many cuts for brute force");
  }

  const size_t size_m = polys.SizeM();
  const size_t k = bound_b >= size_m ? 0 : size_m - bound_b;

  std::vector<std::vector<std::vector<NodeIndex>>> per_tree;
  per_tree.reserve(forest.tree_count());
  for (uint32_t t = 0; t < forest.tree_count(); ++t) {
    per_tree.push_back(internal::EnumerateTreeCuts(forest.tree(t)));
  }

  bool found = false;
  CompressionResult best;
  std::vector<size_t> odometer(per_tree.size(), 0);
  for (;;) {
    if (options.deadline.Expired()) {
      return Status::OutOfRange("brute force exceeded its time budget");
    }
    std::vector<NodeRef> nodes;
    for (uint32_t t = 0; t < per_tree.size(); ++t) {
      for (NodeIndex n : per_tree[t][odometer[t]]) {
        nodes.push_back(NodeRef{t, n});
      }
    }
    ValidVariableSet vvs(std::move(nodes));
    LossReport loss = ComputeLossNaive(polys, forest, vvs);
    if (loss.monomial_loss >= k) {
      if (!found || loss.variable_loss < best.loss.variable_loss) {
        best.vvs = std::move(vvs);
        best.loss = loss;
        best.adequate = true;
        found = true;
      }
    }
    size_t i = 0;
    while (i < odometer.size()) {
      if (++odometer[i] < per_tree[i].size()) break;
      odometer[i] = 0;
      ++i;
    }
    if (i == odometer.size()) break;
  }
  if (!found) {
    return Status::Infeasible("no valid variable set is adequate for bound");
  }
  return best;
}

}  // namespace provabs
