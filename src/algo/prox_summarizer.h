#ifndef PROVABS_ALGO_PROX_SUMMARIZER_H_
#define PROVABS_ALGO_PROX_SUMMARIZER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "abstraction/abstraction_forest.h"
#include "abstraction/loss.h"
#include "common/statusor.h"
#include "common/timer.h"
#include "core/polynomial_set.h"

namespace provabs {

/// Result of the Prox competitor. Unlike the tree algorithms, Prox produces
/// a *grouping* (a partition of the variables into merged groups) that is
/// not necessarily a cut of the abstraction trees — this is exactly the
/// extra generality (and the loss of guarantees) that the paper attributes
/// to the approach of Ainy et al. [3].
struct ProxResult {
  /// Substitution: original variable -> representative group variable.
  std::unordered_map<VariableId, VariableId> substitution;
  LossReport loss;
  bool adequate = false;
  /// Number of oracle evaluations performed (pairwise what-if merges).
  uint64_t oracle_calls = 0;
  /// Number of merge iterations executed.
  uint64_t iterations = 0;
};

/// Limits for the competitor (it does not otherwise terminate quickly; the
/// paper reports >24h runs on the larger workloads).
struct ProxOptions {
  uint64_t max_oracle_calls = 500'000'000;
  /// Wall-clock cutoff, checked every 256 oracle calls. Expiry aborts with
  /// kOutOfRange, same as an exhausted oracle-call budget.
  Deadline deadline = Deadline::Infinite();
};

/// Re-implementation of the summarization algorithm of Ainy et al.
/// (CIKM 2015) as described in §4.3 ("Gain of abstraction trees"): the
/// algorithm repeatedly examines, via an oracle, the grouping of variable
/// pairs, and applies the pair-merge that most reduces the provenance size;
/// every merge costs one variable of granularity. The abstraction forest
/// plays the role of the black-box oracle: a pair may be grouped only if
/// both variables' groups lie in the same tree (their union sits below a
/// common ancestor). Iterates until the bound is met or no merge remains.
///
/// Complexity per iteration is quadratic in the number of live groups, and
/// the number of iterations is linear in the variables — the run-time blowup
/// relative to OptimalSingleTree is the subject of Figure 12.
StatusOr<ProxResult> ProxSummarize(const PolynomialSet& polys,
                                   const AbstractionForest& forest,
                                   size_t bound_b,
                                   const ProxOptions& options = {});

}  // namespace provabs

#endif  // PROVABS_ALGO_PROX_SUMMARIZER_H_
