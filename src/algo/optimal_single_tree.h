#ifndef PROVABS_ALGO_OPTIMAL_SINGLE_TREE_H_
#define PROVABS_ALGO_OPTIMAL_SINGLE_TREE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "abstraction/abstraction_forest.h"
#include "abstraction/loss.h"
#include "abstraction/valid_variable_set.h"
#include "algo/compressor.h"  // CompressionResult (the unified result type)
#include "common/statusor.h"
#include "common/timer.h"
#include "core/polynomial_set.h"

namespace provabs {

/// Tuning knobs, exposed for the §4.1 ablation benchmarks.
struct OptimalOptions {
  /// Use hash-map (sparse) DP arrays instead of dense (mostly-⊥) arrays.
  bool sparse_arrays = true;
  /// Skip the children convolution for height-1 nodes (their array is
  /// always {0:0} plus the self entry).
  bool height1_shortcut = true;
  /// Wall-clock cutoff, checked once per node of the bottom-up DP. The DP
  /// is anytime: on expiry the remaining nodes get degraded arrays (the
  /// all-leaves cut plus the node's own singleton), so the run still
  /// returns a VALID cut — adequacy is preserved exactly, optimality is
  /// what expiry trades away — with `budget_exhausted` set on the result.
  /// Default: never expires.
  Deadline deadline;
  /// Extra bucket headroom retained above k = |P|_M − B: the DP arrays are
  /// computed at clamp K = min(|P|_M, k + retain_headroom), so a retained
  /// result can be re-queried after appends grow |P|_M (hence k) by up to
  /// this many monomials without a full re-run. The reported result is
  /// provably identical for every headroom value (clamping commutes with
  /// the (min,+) convolution; the query runs in the k-clamped view), so
  /// this knob trades DP work for incremental patchability only.
  uint32_t retain_headroom = 64;
  /// Keep the per-tree DP tables (arrays, residual index, chosen cut) on
  /// the result for OptimalRecompress. Never retained for budget-exhausted
  /// runs, whose degraded arrays are not exact.
  bool retain_state = true;
};

namespace internal {

/// Per-node DP table: bucket (= min(ML, clamp)) -> minimal variable loss,
/// plus whether the optimum at that bucket is the singleton VVS {v}.
/// Buckets absent from `vl` are ⊥.
struct DpNodeArray {
  std::unordered_map<uint32_t, uint64_t> vl;
  std::unordered_map<uint32_t, bool> use_self;

  uint64_t Get(uint32_t bucket) const {
    auto it = vl.find(bucket);
    return it == vl.end() ? ~0ull : it->second;
  }
  bool UsesSelf(uint32_t bucket) const {
    auto it = use_self.find(bucket);
    return it != use_self.end() && it->second;
  }
  void Offer(uint32_t bucket, uint64_t value, bool self) {
    auto it = vl.find(bucket);
    if (it == vl.end() || value < it->second) {
      vl[bucket] = value;
      use_self[bucket] = self;
    }
  }
};

/// Flattened (bucket, vl) snapshots of one node's convolution prefixes
/// τ[0]..τ[w-1] at the clamp the node's array was computed at (entry order
/// is irrelevant — readers project into a dense view first). Retaining
/// them is what makes reconstruction convolution-free: the canonical cut
/// walk only ever needs, per child, the view-projection of two adjacent
/// prefixes, so Reconstruct reads these instead of re-running the (min,+)
/// convolution — the single most expensive step of the whole DP at the
/// root — a second time.
using ConvPrefixes = std::vector<std::vector<std::pair<uint32_t, uint64_t>>>;

/// The optimal DP's retained per-tree tables, carried opaquely on
/// CompressionResult::dp_state. Everything OptimalRecompress needs to
/// patch a previous run after localized appends: the clamp-K node arrays,
/// per-node self losses, the residual index (appendable), the chosen cut,
/// and the fingerprints that gate reuse (bound, |P|_M, set revision, tree
/// shape). Immutable once published; Recompress copies it.
struct RetainedDpState {
  explicit RetainedDpState(LeafResidualIndex idx) : index(std::move(idx)) {}

  uint32_t tree_index = 0;
  uint64_t bound = 0;
  size_t size_m = 0;        ///< |P|_M the DP ran against.
  uint64_t revision = 0;    ///< PolynomialSet::revision() at run time.
  uint32_t clamp = 0;       ///< Bucket clamp K the arrays hold.
  bool sparse_arrays = true;
  bool height1_shortcut = true;
  /// Tree-shape fingerprint: node count plus the leaf labels in DFS order.
  size_t node_count = 0;
  std::vector<VariableId> leaf_labels;
  LeafResidualIndex index;
  /// Per-node arrays, individually shared: a patched generation deep-copies
  /// only the arrays on dirty leaf→root paths and aliases the rest, so the
  /// copy-on-patch cost is O(dirty path), not O(tree × clamp).
  std::vector<std::shared_ptr<const DpNodeArray>> arrays;
  /// Per-node convolution prefixes, shared like `arrays` (null/empty for
  /// leaves, height-1 shortcut nodes, and dense-ablation runs, where
  /// Reconstruct rebuilds them on the fly).
  std::vector<std::shared_ptr<const ConvPrefixes>> prefixes;
  std::vector<LossReport> self_loss;
  /// The cut chosen on THIS tree (node indices, no other trees' leaves).
  std::vector<NodeIndex> chosen;
};

}  // namespace internal

/// Algorithm 1 (Optimal Valid Variables Selection): computes an optimal VVS
/// for the single tree `tree_index` of `forest` under monomial bound
/// `bound_b`, in time O(n·w·k²·|P|_M) (Proposition 14). Leaves of the tree
/// that do not occur in `polys` are handled natively (they contribute no
/// loss), so pre-pruning is not required.
///
/// Returns kInfeasible if no VVS of the tree is adequate for `bound_b`
/// (Example 8), and kInvalidArgument if the tree is incompatible with the
/// polynomials.
StatusOr<CompressionResult> OptimalSingleTree(
    const PolynomialSet& polys, const AbstractionForest& forest,
    uint32_t tree_index, size_t bound_b, const OptimalOptions& options = {});

/// Why OptimalRecompress declined to patch and the caller must fall back
/// to the full DP.
enum class RecompressFallback {
  kNone = 0,          ///< Patched successfully.
  kNoState,           ///< prev carries no (or incompatible) retained tables.
  kDeltaIncomplete,   ///< Delta log truncated or revisions don't line up.
  kShapeChanged,      ///< Forest/tree shape differs from the retained run.
  kHeadroomExhausted, ///< New k exceeds the retained bucket clamp.
  kCrossesCut,        ///< An append touches a leaf strictly below a chosen
                      ///< internal node (the abstracted interior).
};

/// Stable lower_snake_case name for logs/counters/tests.
const char* RecompressFallbackName(RecompressFallback fallback);

/// Incrementally re-solves a previous OptimalSingleTree run after `polys`
/// grew by `delta` (appends only). Re-derives only what the delta touched:
/// appended polynomials are folded into the retained residual index, the
/// DP arrays along dirty leaf→root paths are recomputed, and the root is
/// re-queried at the new k — every untouched array is reused as-is, so the
/// result is field-identical to a full re-run by construction.
///
/// On any gate failure (see RecompressFallback) returns kFailedPrecondition
/// with `fallback` set; the caller runs the full DP instead. Returns
/// kInfeasible exactly when the full DP would.
StatusOr<CompressionResult> OptimalRecompress(
    const PolynomialSet& polys, const AbstractionForest& forest,
    const CompressionResult& prev, const PolynomialSetDelta& delta,
    size_t bound_b, RecompressFallback* fallback = nullptr);

namespace internal {

/// The root DP array of Algorithm 1 run without bucket clamping: every
/// achievable monomial loss paired with its minimal variable loss, sorted
/// by monomial loss. Exposed for OptimalTradeoffCurve, which derives the
/// whole size/granularity Pareto frontier from one DP run.
StatusOr<std::vector<std::pair<uint32_t, uint64_t>>> RootLossProfile(
    const PolynomialSet& polys, const AbstractionForest& forest,
    uint32_t tree_index);

}  // namespace internal

}  // namespace provabs

#endif  // PROVABS_ALGO_OPTIMAL_SINGLE_TREE_H_
