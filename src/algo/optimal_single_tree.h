#ifndef PROVABS_ALGO_OPTIMAL_SINGLE_TREE_H_
#define PROVABS_ALGO_OPTIMAL_SINGLE_TREE_H_

#include <cstdint>

#include "abstraction/abstraction_forest.h"
#include "abstraction/loss.h"
#include "abstraction/valid_variable_set.h"
#include "algo/compressor.h"  // CompressionResult (the unified result type)
#include "common/statusor.h"
#include "common/timer.h"
#include "core/polynomial_set.h"

namespace provabs {

/// Tuning knobs, exposed for the §4.1 ablation benchmarks.
struct OptimalOptions {
  /// Use hash-map (sparse) DP arrays instead of dense (mostly-⊥) arrays.
  bool sparse_arrays = true;
  /// Skip the children convolution for height-1 nodes (their array is
  /// always {0:0} plus the self entry).
  bool height1_shortcut = true;
  /// Wall-clock cutoff, checked once per node of the bottom-up DP; on
  /// expiry the algorithm fails with kOutOfRange. Default: never expires.
  Deadline deadline;
};

/// Algorithm 1 (Optimal Valid Variables Selection): computes an optimal VVS
/// for the single tree `tree_index` of `forest` under monomial bound
/// `bound_b`, in time O(n·w·k²·|P|_M) (Proposition 14). Leaves of the tree
/// that do not occur in `polys` are handled natively (they contribute no
/// loss), so pre-pruning is not required.
///
/// Returns kInfeasible if no VVS of the tree is adequate for `bound_b`
/// (Example 8), and kInvalidArgument if the tree is incompatible with the
/// polynomials.
StatusOr<CompressionResult> OptimalSingleTree(
    const PolynomialSet& polys, const AbstractionForest& forest,
    uint32_t tree_index, size_t bound_b, const OptimalOptions& options = {});

namespace internal {

/// The root DP array of Algorithm 1 run without bucket clamping: every
/// achievable monomial loss paired with its minimal variable loss, sorted
/// by monomial loss. Exposed for OptimalTradeoffCurve, which derives the
/// whole size/granularity Pareto frontier from one DP run.
StatusOr<std::vector<std::pair<uint32_t, uint64_t>>> RootLossProfile(
    const PolynomialSet& polys, const AbstractionForest& forest,
    uint32_t tree_index);

}  // namespace internal

}  // namespace provabs

#endif  // PROVABS_ALGO_OPTIMAL_SINGLE_TREE_H_
