#ifndef PROVABS_ALGO_BRUTE_FORCE_H_
#define PROVABS_ALGO_BRUTE_FORCE_H_

#include <cstdint>

#include "abstraction/abstraction_forest.h"
#include "algo/optimal_single_tree.h"
#include "common/statusor.h"
#include "common/timer.h"
#include "core/polynomial_set.h"

namespace provabs {

/// Options for the exhaustive baseline.
struct BruteForceOptions {
  /// Refuse to run if the forest admits more cuts than this (the paper's
  /// brute force was only able to finish below ~80,000 cuts).
  uint64_t max_cuts = 10'000'000;
  /// Wall-clock cutoff, checked once per evaluated cut. An expired deadline
  /// aborts the enumeration with kOutOfRange (partial results would be
  /// indistinguishable from a genuine optimum).
  Deadline deadline = Deadline::Infinite();
};

/// Exhaustive baseline: enumerates every valid variable set of the forest
/// (the cartesian product of per-tree cuts), evaluates each, and returns an
/// optimal one. Exponentially expensive — used for ground truth in tests
/// and as the "Brute-Force" series of Figures 5 and 11.
///
/// Returns kOutOfRange if the cut count exceeds `max_cuts`, and kInfeasible
/// if no cut is adequate for `bound_b`.
StatusOr<CompressionResult> BruteForce(const PolynomialSet& polys,
                                       const AbstractionForest& forest,
                                       size_t bound_b,
                                       const BruteForceOptions& options = {});

namespace internal {

/// Materializes all cuts of `tree` as node-index lists (cuts(v) = {v} ∪
/// product of children's cuts). Shared by the serial and parallel brute
/// force.
std::vector<std::vector<NodeIndex>> EnumerateTreeCuts(
    const AbstractionTree& tree);

}  // namespace internal

}  // namespace provabs

#endif  // PROVABS_ALGO_BRUTE_FORCE_H_
