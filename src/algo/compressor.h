#ifndef PROVABS_ALGO_COMPRESSOR_H_
#define PROVABS_ALGO_COMPRESSOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "abstraction/abstraction_forest.h"
#include "abstraction/loss.h"
#include "abstraction/valid_variable_set.h"
#include "common/statusor.h"
#include "core/polynomial_set.h"

namespace provabs {

/// The unified compression API. The paper presents its algorithms — the
/// optimal single-tree DP (Algorithm 1), the greedy multi-tree heuristic
/// (Algorithm 2), the exhaustive baseline, and the Prox competitor of Ainy
/// et al. — as interchangeable strategies over one problem: given a
/// polynomial set, an abstraction forest, and a monomial bound, choose an
/// abstraction. This header is the seam through which every layer (serving,
/// CLI, online pipeline, benches) selects a strategy by name, so adding an
/// algorithm means registering one adapter, not editing call sites.

/// Options accepted by every registered compressor. Fields an algorithm
/// does not use are ignored (documented per capability below).
struct CompressOptions {
  /// Monomial bound B: the abstraction must satisfy |P↓S|_M ≤ B.
  uint64_t bound = 0;
  /// Tree index for single-tree algorithms ("opt"); multi-tree algorithms
  /// ignore it.
  uint32_t root = 0;
  /// Seed for randomized strategies. All four built-ins are deterministic
  /// and ignore it; the field exists so a future sampling-based compressor
  /// slots in without an API change (the serving cache key would then need
  /// to include it — see docs/SERVER.md).
  uint64_t seed = 0;
  /// Wall-clock budget in milliseconds; 0 = unlimited. Every built-in
  /// honors it, each at its natural check granularity: "brute" per cut,
  /// "prox" per oracle-call batch, "opt" per DP node, "greedy" per merge
  /// round. The anytime algorithms ("opt", "greedy") return their
  /// best-so-far valid cut on expiry with `budget_exhausted` set; the
  /// enumerative ones ("brute", "prox") have no meaningful partial answer
  /// and fail with kOutOfRange. A compressor that cannot enforce a budget
  /// must advertise `supports_time_budget = false` so callers can reject
  /// the option up front instead of being silently unprotected.
  uint64_t time_budget_ms = 0;
};

/// Result of a compression algorithm: the chosen abstraction and its exact
/// loss (computed on the true polynomials, not hashes).
///
/// Two abstraction representations exist. Tree-cut algorithms (opt, greedy,
/// brute) produce a ValidVariableSet; grouping algorithms (prox) produce an
/// arbitrary variable partition that is not necessarily a cut, carried as a
/// substitution map. `Apply`/`Describe` dispatch on the representation so
/// callers never need to care which algorithm ran.
namespace internal {
struct RetainedDpState;  // algo/optimal_single_tree.h — opaque here.
}  // namespace internal

struct CompressionResult {
  ValidVariableSet vvs;
  LossReport loss;
  /// True iff |P↓S|_M ≤ B (the abstraction is adequate for the bound).
  bool adequate = false;
  /// True when an anytime algorithm's time budget expired and the result
  /// is its best-so-far valid cut rather than the full-run answer. The cut
  /// is always valid and `adequate` is still exact for it; optimality (VL
  /// minimality) is what the budget traded away.
  bool budget_exhausted = false;
  /// Retained per-tree DP tables from the optimal algorithm, enabling
  /// OptimalRecompress to patch this result after localized appends
  /// instead of re-running the full DP. Opaque and in-memory only: never
  /// serialized, shared (immutable) between copies of the result, null
  /// for non-"opt" algorithms and for budget-exhausted runs.
  std::shared_ptr<const internal::RetainedDpState> dp_state;

  /// When true the abstraction is `substitution` (original variable →
  /// representative group variable) and `vvs` is empty; representatives of
  /// merged groups are synthesized ids OUTSIDE the VariableTable until
  /// `InternGrouping` is called — an applied grouping can be evaluated
  /// in-memory as-is, but serializing it (which renders every id through
  /// the table) requires interning first.
  bool grouping = false;
  std::unordered_map<VariableId, VariableId> substitution;

  /// P↓S for either representation.
  PolynomialSet Apply(
      const AbstractionForest& forest, const PolynomialSet& polys,
      CoefficientCombine combine = CoefficientCombine::kAdd) const;

  /// Human-readable rendering: the chosen cut labels ("{SB, e, F}") or the
  /// merged groups ("{a, b+c}"), deterministically ordered.
  std::string Describe(const AbstractionForest& forest,
                       const VariableTable& vars) const;

  /// For grouping results: replaces each synthesized group representative
  /// with a variable interned into `vars`, named by the group's sorted
  /// '+'-joined members ("plan0+plan3") — after this, Apply's output is
  /// fully table-resident and serializes like any other polynomial set.
  /// No-op for cut results and for untouched singleton groups.
  void InternGrouping(VariableTable& vars);
};

/// Capability record advertised by a compressor, served verbatim over the
/// wire by the ListAlgos request so clients can route without hardcoding
/// algorithm names.
struct CompressorInfo {
  std::string name;
  /// One-line description for --help / remote-info output.
  std::string summary;
  /// Same inputs always yield the same result (all built-ins).
  bool deterministic = false;
  /// The algorithm's machinery can derive the full size/granularity Pareto
  /// frontier (OptimalTradeoffCurve; only "opt").
  bool supports_tradeoff = false;
  /// Guaranteed to return an optimal abstraction when one exists.
  bool exact = false;
  /// Results are tree cuts (a serializable ValidVariableSet); false for
  /// grouping algorithms like "prox". Callers that need a VVS (e.g. the
  /// CLI's --vvs-out) check this BEFORE running the algorithm.
  bool produces_cut = false;
  /// CompressOptions::time_budget_ms is enforced: anytime algorithms
  /// return best-so-far with `budget_exhausted` set, the rest fail with
  /// kOutOfRange. True for all four built-ins; a compressor that cannot
  /// check a deadline must advertise false, and callers that need budget
  /// protection reject it up front (a silently ignored budget is the worst
  /// outcome).
  bool supports_time_budget = false;
};

/// One compression strategy. Implementations must be stateless and
/// thread-safe: the serving layer calls a single instance from many
/// connection threads concurrently.
class Compressor {
 public:
  virtual ~Compressor() = default;

  virtual const CompressorInfo& info() const = 0;

  virtual StatusOr<CompressionResult> Compress(
      const PolynomialSet& polys, const AbstractionForest& forest,
      const CompressOptions& options) const = 0;
};

/// Name → compressor registry. `Default()` is the process-wide instance,
/// pre-populated with the four built-ins; subsystems resolve request
/// strings through it and error messages enumerate what is actually
/// registered. Thread-safe; registered compressors live for the registry's
/// lifetime (process lifetime for Default()).
class CompressorRegistry {
 public:
  /// An empty registry (for tests and embedders composing their own set).
  CompressorRegistry() = default;

  CompressorRegistry(const CompressorRegistry&) = delete;
  CompressorRegistry& operator=(const CompressorRegistry&) = delete;

  /// The process-wide registry with "opt", "greedy", "brute", and "prox"
  /// registered. Constructed on first use (no static-init-order hazards).
  static CompressorRegistry& Default();

  /// Registers a compressor under its info().name. Duplicate names are
  /// rejected (kInvalidArgument) — silently replacing an algorithm another
  /// subsystem already resolved would change results under its feet.
  Status Register(std::unique_ptr<Compressor> compressor);

  /// nullptr when no compressor of that name is registered.
  const Compressor* Find(const std::string& name) const;

  /// Find() with a useful failure: the error lists every registered name.
  StatusOr<const Compressor*> Resolve(const std::string& name) const;

  /// Registered names in sorted order.
  std::vector<std::string> Names() const;

  /// Capability records in name-sorted order (the ListAlgos payload).
  std::vector<CompressorInfo> Infos() const;

  /// "brute, greedy, opt, prox" — for error and usage text.
  std::string NamesCsv() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Compressor>> by_name_;
};

/// Registers the four built-in algorithm adapters into `registry`.
/// Default() calls this on construction; exposed so tests can compose a
/// fresh registry with the same contents.
Status RegisterBuiltinCompressors(CompressorRegistry& registry);

}  // namespace provabs

#endif  // PROVABS_ALGO_COMPRESSOR_H_
