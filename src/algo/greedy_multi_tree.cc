#include "algo/greedy_multi_tree.h"

#include <algorithm>
#include <set>
#include <vector>

#include "algo/merge_state.h"
#include "common/macros.h"

namespace provabs {

namespace {

/// Variables currently standing for the leaves below each child of `node`:
/// the child's own label if the child is in S, which is the invariant when
/// `node` is a candidate.
std::vector<VariableId> ChildLabels(const AbstractionTree& tree,
                                    NodeIndex node) {
  std::vector<VariableId> labels;
  const auto& n = tree.node(node);
  labels.reserve(n.children.size());
  for (NodeIndex c : n.children) labels.push_back(tree.node(c).label);
  return labels;
}

}  // namespace

StatusOr<CompressionResult> GreedyMultiTree(const PolynomialSet& polys,
                                            const AbstractionForest& forest,
                                            size_t bound_b,
                                            const GreedyOptions& options) {
  Status compat = forest.CheckCompatible(polys);
  if (!compat.ok()) return compat;
  if (bound_b == 0) {
    return Status::InvalidArgument("bound must be at least 1");
  }

  const size_t size_m = polys.SizeM();
  const size_t k = bound_b >= size_m ? 0 : size_m - bound_b;

  MergeState state(polys);

  // S as a set of NodeRef; initialized with all leaves (lines 3–5).
  std::set<NodeRef> s;
  for (uint32_t t = 0; t < forest.tree_count(); ++t) {
    for (NodeIndex leaf : forest.tree(t).leaves()) {
      s.insert(NodeRef{t, leaf});
    }
  }

  // Candidates: internal nodes all of whose children are in S (lines 6–9).
  std::set<NodeRef> candidates;
  auto all_children_in_s = [&](const NodeRef& ref) {
    const auto& n = forest.tree(ref.tree).node(ref.node);
    for (NodeIndex c : n.children) {
      if (s.count(NodeRef{ref.tree, c}) == 0) return false;
    }
    return true;
  };
  for (uint32_t t = 0; t < forest.tree_count(); ++t) {
    const AbstractionTree& tree = forest.tree(t);
    for (NodeIndex v = 0; v < tree.node_count(); ++v) {
      if (!tree.node(v).is_leaf() && all_children_in_s(NodeRef{t, v})) {
        candidates.insert(NodeRef{t, v});
      }
    }
  }

  // Main loop (lines 10–14).
  bool budget_exhausted = false;
  while (state.MonomialLoss() < k && !candidates.empty()) {
    // One wall-clock check per merge round bounds the overrun by a single
    // candidate scan. S is a valid cut after every round, so expiry simply
    // stops merging: the anytime answer is the best-so-far cut (possibly
    // inadequate — fewer merges than the bound wanted), flagged
    // budget_exhausted rather than failed.
    if (options.deadline.Expired()) {
      budget_exhausted = true;
      break;
    }
    // Select the candidate with minimal variable loss (first pass; VL is a
    // cheap count), then optionally tie-break on maximal monomial-loss
    // gain among the minimal-VL ties only (second pass; gains require an
    // occurrence scan, so they are not evaluated for dominated candidates).
    size_t best_vl = SIZE_MAX;
    auto vl_of = [&](const NodeRef& c) {
      const AbstractionTree& tree = forest.tree(c.tree);
      size_t active = 0;
      for (NodeIndex child : tree.node(c.node).children) {
        if (state.IsActive(tree.node(child).label)) ++active;
      }
      return active > 0 ? active - 1 : 0;
    };
    for (const NodeRef& c : candidates) {
      best_vl = std::min(best_vl, vl_of(c));
    }
    NodeRef best{};
    bool have_best = false;
    size_t best_ml = 0;
    for (const NodeRef& c : candidates) {
      if (vl_of(c) != best_vl) continue;
      if (!options.tie_break_on_ml) {
        best = c;
        have_best = true;
        break;  // Arbitrary tie-break: first minimal-VL candidate.
      }
      size_t ml = state.EvaluateMergeGain(
          ChildLabels(forest.tree(c.tree), c.node));
      if (!have_best || ml > best_ml) {
        best = c;
        best_ml = ml;
        have_best = true;
      }
    }
    PROVABS_CHECK(have_best);

    // Apply: S ← (S \ children(c)) ∪ {c} (lines 11–12).
    const AbstractionTree& tree = forest.tree(best.tree);
    std::vector<VariableId> child_labels = ChildLabels(tree, best.node);
    state.ApplyMerge(child_labels, tree.node(best.node).label);
    for (NodeIndex c : tree.node(best.node).children) {
      s.erase(NodeRef{best.tree, c});
    }
    s.insert(best);
    candidates.erase(best);

    // If c's parent is now a candidate, add it (lines 13–14).
    NodeIndex parent = tree.node(best.node).parent;
    if (parent != kInvalidNode &&
        all_children_in_s(NodeRef{best.tree, parent})) {
      candidates.insert(NodeRef{best.tree, parent});
    }
  }

  CompressionResult result;
  result.vvs = ValidVariableSet(
      std::vector<NodeRef>(s.begin(), s.end()));
  result.loss = ComputeLossNaive(polys, forest, result.vvs);
  result.adequate = result.loss.monomial_loss >= k;
  result.budget_exhausted = budget_exhausted;
  return result;
}

}  // namespace provabs
