#ifndef PROVABS_ALGO_MERGE_STATE_H_
#define PROVABS_ALGO_MERGE_STATE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/polynomial_set.h"
#include "core/variable.h"

namespace provabs {

/// Incremental bookkeeping shared by the greedy algorithm (Algorithm 2) and
/// the Prox competitor: maintains the *current* abstracted form of a
/// polynomial set while variables are merged into meta-variables, supporting
///   * O(occurrences) application of a merge,
///   * O(occurrences) "what-if" evaluation of a merge's monomial-loss gain,
///   * O(1) queries of the current |P↓S|_M.
///
/// Monomial identity is tracked through 64-bit salted hashes of the mapped
/// factor lists (see LeafResidualIndex for the collision discussion).
class MergeState {
 public:
  explicit MergeState(const PolynomialSet& polys);

  /// Current total number of distinct monomials, |P↓S|_M.
  size_t CurrentSizeM() const { return total_m_; }

  /// Monomial loss accumulated so far, ML(S).
  size_t MonomialLoss() const { return original_m_ - total_m_; }

  /// Variable loss accumulated so far, VL(S).
  size_t VariableLoss() const { return variable_loss_; }

  /// True if `var` currently occurs in the (abstracted) polynomials.
  bool IsActive(VariableId var) const { return occ_.count(var) > 0; }

  /// Number of occurrences (monomial instances) of `var`.
  size_t OccurrenceCount(VariableId var) const;

  /// Monomial-loss gain of merging the active variables in `vars` into a
  /// single fresh variable, WITHOUT applying the merge. Inactive entries of
  /// `vars` are ignored.
  size_t EvaluateMergeGain(const std::vector<VariableId>& vars) const;

  /// Merges the active variables in `vars` into `target` (a meta-variable
  /// that must not currently occur in the polynomials, unless it is itself
  /// listed in `vars`). Updates monomials, occurrence lists, the distinct-
  /// monomial census, and the loss counters. Returns the number of active
  /// variables that were merged (0 or 1 means the merge was a no-op apart
  /// from renaming).
  size_t ApplyMerge(const std::vector<VariableId>& vars, VariableId target);

 private:
  struct MonoRef {
    uint32_t poly;
    uint32_t mono;
  };

  /// Current (mapped) factor list of each monomial, per polynomial.
  std::vector<std::vector<std::vector<Factor>>> monos_;
  /// Cached current hash key of each monomial.
  std::vector<std::vector<uint64_t>> keys_;
  /// Per polynomial: current key -> number of monomial instances.
  std::vector<std::unordered_map<uint64_t, uint32_t>> key_counts_;
  /// Current variable -> occurrences. Only variables ever touched by merges
  /// (or present initially) appear; absent means inactive.
  std::unordered_map<VariableId, std::vector<MonoRef>> occ_;

  size_t original_m_ = 0;
  size_t total_m_ = 0;
  size_t variable_loss_ = 0;

  static uint64_t HashFactors(size_t poly_index,
                              const std::vector<Factor>& factors);
  /// Hash with every factor variable in `from_set` replaced by a sentinel.
  uint64_t HashMappedKey(uint32_t poly, const std::vector<Factor>& factors,
                         VariableId from, VariableId to) const;
};

}  // namespace provabs

#endif  // PROVABS_ALGO_MERGE_STATE_H_
