#include "algo/tradeoff_curve.h"

#include <algorithm>

#include "algo/optimal_single_tree.h"

namespace provabs {

StatusOr<std::vector<TradeoffPoint>> OptimalTradeoffCurve(
    const PolynomialSet& polys, const AbstractionForest& forest,
    uint32_t tree_index) {
  auto profile = internal::RootLossProfile(polys, forest, tree_index);
  if (!profile.ok()) return profile.status();

  const size_t size_m = polys.SizeM();
  // Keep only Pareto-optimal entries: scanning monomial loss in DESCENDING
  // order, a point survives iff its variable loss beats every point with
  // larger loss (better compression).
  std::vector<TradeoffPoint> curve;
  uint64_t best_vl = UINT64_MAX;
  for (auto it = profile->rbegin(); it != profile->rend(); ++it) {
    const auto& [ml, vl] = *it;
    if (vl < best_vl) {
      best_vl = vl;
      curve.push_back(TradeoffPoint{size_m - ml, static_cast<size_t>(vl)});
    }
  }
  std::reverse(curve.begin(), curve.end());
  return curve;
}

}  // namespace provabs
