#ifndef PROVABS_ALGO_TRADEOFF_CURVE_H_
#define PROVABS_ALGO_TRADEOFF_CURVE_H_

#include <vector>

#include "abstraction/abstraction_forest.h"
#include "common/statusor.h"
#include "core/polynomial_set.h"

namespace provabs {

/// One point of the size/granularity trade-off (§2.4): some VVS achieves
/// |P↓S|_M = size_m while keeping variable loss variable_loss, and no VVS
/// with |P↓S|_M ≤ size_m loses fewer variables.
struct TradeoffPoint {
  size_t size_m = 0;
  size_t variable_loss = 0;
};

/// Computes the full Pareto frontier of the (provenance size, variable
/// loss) trade-off for a single abstraction tree, in ONE run of Algorithm
/// 1's dynamic program (the root array already holds, for every achievable
/// monomial loss, the minimal variable loss — Definition 7's precise
/// abstractions). Points are returned with size_m strictly decreasing and
/// variable_loss strictly increasing; the first point has variable loss 0
/// (at the best size achievable for free) and the last is the maximal
/// compression.
///
/// An analyst can read the curve to pick a bound *before* committing to an
/// abstraction — answering "how much granularity does each extra unit of
/// compression cost?", which the paper's formulation implicitly optimizes
/// one bound at a time.
StatusOr<std::vector<TradeoffPoint>> OptimalTradeoffCurve(
    const PolynomialSet& polys, const AbstractionForest& forest,
    uint32_t tree_index);

}  // namespace provabs

#endif  // PROVABS_ALGO_TRADEOFF_CURVE_H_
