#ifndef PROVABS_ALGO_GREEDY_MULTI_TREE_H_
#define PROVABS_ALGO_GREEDY_MULTI_TREE_H_

#include "abstraction/abstraction_forest.h"
#include "algo/optimal_single_tree.h"
#include "common/statusor.h"
#include "common/timer.h"
#include "core/polynomial_set.h"

namespace provabs {

/// Tuning knobs for the greedy heuristic.
struct GreedyOptions {
  /// Among candidates with equal (minimal) variable loss, prefer the one
  /// with the largest monomial-loss gain (the behaviour exhibited by
  /// Example 15 of the paper, where q1 is preferred over SB). When false,
  /// ties are broken arbitrarily, matching the pseudocode's weakest reading.
  bool tie_break_on_ml = true;
  /// Wall-clock cutoff, checked once per merge round of the main loop.
  /// Greedy is anytime: S is a valid cut after every round, so expiry
  /// stops merging and returns the best-so-far cut with `budget_exhausted`
  /// set (possibly `adequate == false`). Default: never expires.
  Deadline deadline;
};

/// Algorithm 2 (Greedy Valid Variables Selection): heuristic compression
/// with an arbitrary abstraction forest (the general problem is NP-hard,
/// Proposition 11). Starts from the all-leaves VVS and repeatedly replaces
/// the sibling group with minimal variable loss by its parent, until the
/// bound is met or no candidates remain. O(n·|P|_M).
///
/// Unlike OptimalSingleTree this never fails with kInfeasible: if the bound
/// is unreachable the best-effort VVS is returned with `adequate == false`
/// (the paper's pseudocode likewise simply stops when candidates run out).
StatusOr<CompressionResult> GreedyMultiTree(
    const PolynomialSet& polys, const AbstractionForest& forest,
    size_t bound_b, const GreedyOptions& options = {});

}  // namespace provabs

#endif  // PROVABS_ALGO_GREEDY_MULTI_TREE_H_
