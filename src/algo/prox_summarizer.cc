#include "algo/prox_summarizer.h"

#include <string>
#include <vector>

#include "algo/merge_state.h"
#include "common/macros.h"

namespace provabs {

namespace {

struct Group {
  VariableId representative;   // Current variable standing for the group.
  uint32_t tree;               // Owning tree (groups never cross trees).
  std::vector<VariableId> members;  // Original leaf variables.
  bool alive = true;
};

}  // namespace

StatusOr<ProxResult> ProxSummarize(const PolynomialSet& polys,
                                   const AbstractionForest& forest,
                                   size_t bound_b,
                                   const ProxOptions& options) {
  Status compat = forest.CheckCompatible(polys);
  if (!compat.ok()) return compat;
  if (bound_b == 0) {
    return Status::InvalidArgument("bound must be at least 1");
  }

  const size_t size_m = polys.SizeM();
  const size_t k = bound_b >= size_m ? 0 : size_m - bound_b;

  MergeState state(polys);

  // One singleton group per tree leaf that occurs in the polynomials.
  std::vector<Group> groups;
  for (uint32_t t = 0; t < forest.tree_count(); ++t) {
    const AbstractionTree& tree = forest.tree(t);
    for (NodeIndex leaf : tree.leaves()) {
      VariableId label = tree.node(leaf).label;
      if (!state.IsActive(label)) continue;
      groups.push_back(Group{label, t, {label}, true});
    }
  }

  ProxResult result;
  // Fresh representative variables for merged groups: synthesize ids above
  // the existing id space. We cannot intern into the caller's VariableTable
  // (not passed; Prox groups are not tree nodes), so use a private id range.
  VariableId next_fresh = 0x80000000u;
  {
    // Ensure the private range does not collide with existing ids.
    auto vars = polys.Variables();
    for (VariableId v : vars) {
      PROVABS_CHECK(v < 0x80000000u);
    }
  }

  while (state.MonomialLoss() < k) {
    // Examine all live group pairs within the same tree (oracle calls) and
    // pick the merge with the largest monomial-loss gain; each pair-merge
    // costs exactly one variable, so max-gain == minimal loss per gain.
    size_t best_gain = 0;
    int best_a = -1;
    int best_b = -1;
    bool any_pair = false;
    for (size_t a = 0; a < groups.size(); ++a) {
      if (!groups[a].alive) continue;
      for (size_t b = a + 1; b < groups.size(); ++b) {
        if (!groups[b].alive) continue;
        if (groups[a].tree != groups[b].tree) continue;  // Oracle rejects.
        any_pair = true;
        ++result.oracle_calls;
        if (result.oracle_calls > options.max_oracle_calls) {
          return Status::OutOfRange(
              "Prox exceeded its oracle-call budget (did not converge)");
        }
        if ((result.oracle_calls & 0xFF) == 0 && options.deadline.Expired()) {
          return Status::OutOfRange("Prox exceeded its time budget");
        }
        size_t gain = state.EvaluateMergeGain(
            {groups[a].representative, groups[b].representative});
        if (best_a < 0 || gain > best_gain) {
          best_gain = gain;
          best_a = static_cast<int>(a);
          best_b = static_cast<int>(b);
        }
      }
    }
    if (!any_pair || best_a < 0) break;  // No merge possible.

    VariableId fresh = next_fresh++;
    state.ApplyMerge(
        {groups[best_a].representative, groups[best_b].representative},
        fresh);
    ++result.iterations;
    groups[best_a].representative = fresh;
    groups[best_a].members.insert(groups[best_a].members.end(),
                                  groups[best_b].members.begin(),
                                  groups[best_b].members.end());
    groups[best_b].alive = false;
  }

  for (const Group& g : groups) {
    if (!g.alive) continue;
    for (VariableId member : g.members) {
      result.substitution[member] = g.representative;
    }
  }
  result.loss.monomial_loss = state.MonomialLoss();
  result.loss.variable_loss = state.VariableLoss();
  result.adequate = state.MonomialLoss() >= k;
  return result;
}

}  // namespace provabs
