#include "algo/optimal_single_tree.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <vector>

#include "common/macros.h"

namespace provabs {

namespace {

constexpr uint64_t kBottom = std::numeric_limits<uint64_t>::max();

/// Per-node DP table: bucket (= min(ML, k)) -> minimal variable loss,
/// plus whether the optimum at that bucket is the singleton VVS {v}.
/// Buckets absent from `vl` are ⊥.
struct NodeArray {
  std::unordered_map<uint32_t, uint64_t> vl;
  std::unordered_map<uint32_t, bool> use_self;

  uint64_t Get(uint32_t bucket) const {
    auto it = vl.find(bucket);
    return it == vl.end() ? kBottom : it->second;
  }
  bool UsesSelf(uint32_t bucket) const {
    auto it = use_self.find(bucket);
    return it != use_self.end() && it->second;
  }
  void Offer(uint32_t bucket, uint64_t value, bool self) {
    auto it = vl.find(bucket);
    if (it == vl.end() || value < it->second) {
      vl[bucket] = value;
      use_self[bucket] = self;
    }
  }
};

/// Convolution of children arrays (procedure computeArray): combines cuts of
/// independent sibling subtrees; losses add, buckets clamp at k. When
/// `splits` is non-null, records for each (child i, bucket j) the bucket
/// taken in the prefix τ[i-1] — enough to reconstruct the chosen cut.
///
/// `splits->at(i)[j]` = bucket s of τ[i-1] such that τ[i][j] was reached via
/// τ[i-1][s] + A_i[j ⊖ s].
NodeArray Convolve(const std::vector<const NodeArray*>& children, uint32_t k,
                   std::vector<std::unordered_map<uint32_t, uint32_t>>* splits) {
  PROVABS_CHECK(!children.empty());
  NodeArray tau = *children[0];
  // The copy must carry only the child's VALUES: `use_self` describes the
  // child's own singleton optimum, and a unary parent inheriting it would
  // make Reconstruct emit the parent where the DP actually scored the
  // child's singleton VVS — diverging from the dense ablation arm, whose
  // ConvolveDense never propagates the flag.
  tau.use_self.clear();
  if (splits) {
    splits->clear();
    splits->resize(children.size());
  }
  for (size_t i = 1; i < children.size(); ++i) {
    NodeArray next;
    std::unordered_map<uint32_t, uint32_t> split_i;
    for (const auto& [s, vl_prefix] : tau.vl) {
      for (const auto& [j_child, vl_child] : children[i]->vl) {
        uint32_t bucket = std::min<uint64_t>(
            static_cast<uint64_t>(s) + j_child, k);
        uint64_t vl = vl_prefix + vl_child;
        auto it = next.vl.find(bucket);
        if (it == next.vl.end() || vl < it->second) {
          next.vl[bucket] = vl;
          if (splits) split_i[bucket] = s;
        } else if (splits && vl == it->second) {
          // Canonical tie-break: among optimal (prefix, child) pairs keep
          // the smallest prefix bucket, so the reconstructed cut does not
          // depend on hash-map iteration order (the sparse and dense arms
          // must reconstruct the same cut on ties).
          auto sit = split_i.find(bucket);
          if (sit != split_i.end() && s < sit->second) sit->second = s;
        }
      }
    }
    tau = std::move(next);
    if (splits) (*splits)[i] = std::move(split_i);
  }
  return tau;
}

/// Dense-array variant of the same convolution, used when
/// OptimalOptions::sparse_arrays is false (ablation arm). Produces identical
/// results; only the data structure differs (vectors with ⊥ sentinels).
NodeArray ConvolveDense(const std::vector<const NodeArray*>& children,
                        uint32_t k) {
  PROVABS_CHECK(!children.empty());
  std::vector<uint64_t> tau(k + 1, kBottom);
  for (const auto& [b, v] : children[0]->vl) tau[b] = v;
  for (size_t i = 1; i < children.size(); ++i) {
    std::vector<uint64_t> dense_child(k + 1, kBottom);
    for (const auto& [b, v] : children[i]->vl) dense_child[b] = v;
    std::vector<uint64_t> next(k + 1, kBottom);
    for (uint32_t s = 0; s <= k; ++s) {
      if (tau[s] == kBottom) continue;
      for (uint32_t j = 0; j <= k; ++j) {
        if (dense_child[j] == kBottom) continue;
        uint32_t bucket = std::min(s + j, k);
        uint64_t vl = tau[s] + dense_child[j];
        if (vl < next[bucket]) next[bucket] = vl;
      }
    }
    tau = std::move(next);
  }
  NodeArray out;
  for (uint32_t b = 0; b <= k; ++b) {
    if (tau[b] != kBottom) out.Offer(b, tau[b], false);
  }
  return out;
}

/// Whole-algorithm state, so reconstruction can re-run convolutions.
struct Solver {
  const AbstractionTree* tree;
  const LeafResidualIndex* index;
  uint32_t k;
  OptimalOptions options;
  std::vector<NodeArray> arrays;           // per node
  std::vector<LossReport> self_loss;       // per node, loss of VVS {v}
  std::vector<NodeRef>* out_nodes;
  uint32_t tree_index;

  bool IsHeight1(NodeIndex v) const {
    const auto& n = tree->node(v);
    if (n.is_leaf()) return false;
    for (NodeIndex c : n.children) {
      if (!tree->node(c).is_leaf()) return false;
    }
    return true;
  }

  Status ComputeArrays() {
    const size_t n = tree->node_count();
    arrays.resize(n);
    self_loss.resize(n);
    // DFS pre-order storage: reverse iteration is post-order.
    for (size_t i = n; i-- > 0;) {
      // One wall-clock check per node bounds the overrun by a single
      // convolution — the same best-effort granularity brute force gets
      // from its per-cut check.
      if (options.deadline.Expired()) {
        return Status::OutOfRange("optimal DP exceeded its time budget");
      }
      NodeIndex v = static_cast<NodeIndex>(i);
      const auto& node = tree->node(v);
      if (node.is_leaf()) {
        arrays[v].Offer(0, 0, false);
        continue;
      }
      self_loss[v] = index->NodeLoss(v);
      if (options.height1_shortcut && IsHeight1(v)) {
        // Children are all leaves: the convolution is trivially {0:0}.
        arrays[v].Offer(0, 0, false);
      } else {
        std::vector<const NodeArray*> children;
        children.reserve(node.children.size());
        for (NodeIndex c : node.children) children.push_back(&arrays[c]);
        arrays[v] = options.sparse_arrays ? Convolve(children, k, nullptr)
                                          : ConvolveDense(children, k);
      }
      uint32_t self_bucket = std::min<uint64_t>(
          self_loss[v].monomial_loss, k);
      arrays[v].Offer(self_bucket, self_loss[v].variable_loss, true);
    }
    return Status::OK();
  }

  /// Reconstructs the cut achieving arrays[v] at `bucket` into out_nodes.
  void Reconstruct(NodeIndex v, uint32_t bucket) {
    const auto& node = tree->node(v);
    if (node.is_leaf()) {
      PROVABS_CHECK(bucket == 0);
      out_nodes->push_back(NodeRef{tree_index, v});
      return;
    }
    if (arrays[v].UsesSelf(bucket)) {
      out_nodes->push_back(NodeRef{tree_index, v});
      return;
    }
    if (options.height1_shortcut && IsHeight1(v)) {
      PROVABS_CHECK(bucket == 0);
      for (NodeIndex c : node.children) {
        out_nodes->push_back(NodeRef{tree_index, c});
      }
      return;
    }
    // Re-run the convolution recording splits, then walk back from `bucket`.
    std::vector<const NodeArray*> children;
    children.reserve(node.children.size());
    for (NodeIndex c : node.children) children.push_back(&arrays[c]);
    std::vector<std::unordered_map<uint32_t, uint32_t>> splits;
    NodeArray tau = Convolve(children, k, &splits);
    PROVABS_CHECK(tau.Get(bucket) != kBottom);

    // child_buckets[i] = bucket of child i in the chosen combination.
    std::vector<uint32_t> child_buckets(node.children.size(), 0);
    uint32_t j = bucket;
    for (size_t i = node.children.size(); i-- > 1;) {
      uint32_t s = splits[i].at(j);
      // Child i's bucket is the one whose combination with s yields j.
      // Find it by scanning child i's entries (small maps); ties prefer
      // the smallest bucket so the choice is iteration-order independent.
      uint32_t chosen = 0;
      uint64_t best = kBottom;
      for (const auto& [jc, vlc] : children[i]->vl) {
        if (std::min<uint64_t>(static_cast<uint64_t>(s) + jc, k) != j) {
          continue;
        }
        if (vlc < best || (vlc == best && jc < chosen)) {
          best = vlc;
          chosen = jc;
        }
      }
      PROVABS_CHECK(best != kBottom);
      child_buckets[i] = chosen;
      j = s;
    }
    child_buckets[0] = j;
    for (size_t i = 0; i < node.children.size(); ++i) {
      Reconstruct(node.children[i], child_buckets[i]);
    }
  }
};

}  // namespace

StatusOr<CompressionResult> OptimalSingleTree(
    const PolynomialSet& polys, const AbstractionForest& forest,
    uint32_t tree_index, size_t bound_b, const OptimalOptions& options) {
  if (tree_index >= forest.tree_count()) {
    return Status::InvalidArgument("tree index out of range");
  }
  const AbstractionTree& tree = forest.tree(tree_index);
  Status compat = tree.CheckCompatible(polys);
  if (!compat.ok()) return compat;
  if (bound_b == 0) {
    return Status::InvalidArgument("bound must be at least 1");
  }

  const size_t size_m = polys.SizeM();
  const uint32_t k = bound_b >= size_m
                         ? 0u
                         : static_cast<uint32_t>(size_m - bound_b);

  LeafResidualIndex index(polys, tree);
  Solver solver;
  solver.tree = &tree;
  solver.index = &index;
  solver.k = k;
  solver.options = options;
  solver.tree_index = tree_index;
  Status dp = solver.ComputeArrays();
  if (!dp.ok()) return dp;

  const NodeArray& root_array = solver.arrays[tree.root()];
  if (root_array.Get(k) == kBottom) {
    return Status::Infeasible(
        "no valid variable set of the tree is adequate for the bound");
  }

  CompressionResult result;
  std::vector<NodeRef> chosen;
  solver.out_nodes = &chosen;
  solver.Reconstruct(tree.root(), k);
  // Leaves of OTHER trees in the forest are untouched by this algorithm;
  // include them so the VVS is valid for the whole forest.
  for (uint32_t t = 0; t < forest.tree_count(); ++t) {
    if (t == tree_index) continue;
    for (NodeIndex leaf : forest.tree(t).leaves()) {
      chosen.push_back(NodeRef{t, leaf});
    }
  }
  result.vvs = ValidVariableSet(std::move(chosen));
  result.loss = ComputeLossNaive(polys, forest, result.vvs);
  result.adequate = result.loss.monomial_loss >= k;
  return result;
}

namespace internal {

StatusOr<std::vector<std::pair<uint32_t, uint64_t>>> RootLossProfile(
    const PolynomialSet& polys, const AbstractionForest& forest,
    uint32_t tree_index) {
  if (tree_index >= forest.tree_count()) {
    return Status::InvalidArgument("tree index out of range");
  }
  const AbstractionTree& tree = forest.tree(tree_index);
  Status compat = tree.CheckCompatible(polys);
  if (!compat.ok()) return compat;

  const size_t size_m = polys.SizeM();
  // k = |P|_M exceeds every achievable monomial loss (at least one monomial
  // always survives per non-empty polynomial), so no bucket is clamped and
  // the root array is exact at every entry.
  LeafResidualIndex index(polys, tree);
  Solver solver;
  solver.tree = &tree;
  solver.index = &index;
  solver.k = static_cast<uint32_t>(size_m);
  solver.options = OptimalOptions{};
  solver.tree_index = tree_index;
  // Default options carry an infinite deadline; the DP cannot expire.
  Status dp = solver.ComputeArrays();
  if (!dp.ok()) return dp;

  const NodeArray& root = solver.arrays[tree.root()];
  std::vector<std::pair<uint32_t, uint64_t>> profile(root.vl.begin(),
                                                     root.vl.end());
  std::sort(profile.begin(), profile.end());
  return profile;
}

}  // namespace internal

}  // namespace provabs
