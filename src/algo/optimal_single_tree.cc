#include "algo/optimal_single_tree.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/macros.h"

namespace provabs {

namespace {

using internal::ConvPrefixes;
using internal::DpNodeArray;
using internal::RetainedDpState;

constexpr uint64_t kBottom = std::numeric_limits<uint64_t>::max();

/// Convolution of children arrays (procedure computeArray): combines cuts of
/// independent sibling subtrees; losses add, buckets clamp at `clamp`. When
/// `prefixes` is non-null, snapshots every prefix array τ[0]..τ[w-1] into it
/// (τ[i] = children 0..i folded; τ[w-1] equals the returned array) — the
/// raw material Reconstruct's prefix walk recovers the canonical cut from
/// without running this convolution again.
///
/// Children arrays may be stored at a LARGER clamp than `clamp`: clamping
/// commutes with the (min,+) convolution (min(min(s,c)+min(j,c), c) =
/// min(s+j, c)), so feeding K-clamped arrays through a c-clamped
/// convolution yields exactly the c-clamped result — this is what lets the
/// headroom-retaining DP answer queries in the k-clamped view.
DpNodeArray Convolve(
    const std::vector<const DpNodeArray*>& children, uint32_t clamp,
    ConvPrefixes* prefixes) {
  PROVABS_CHECK(!children.empty());
  DpNodeArray tau;
  // The copy must carry only the child's VALUES: `use_self` describes the
  // child's own singleton optimum, and a unary parent inheriting it would
  // make Reconstruct emit the parent where the DP actually scored the
  // child's singleton VVS — diverging from the dense ablation arm, whose
  // ConvolveDense never propagates the flag. Raw buckets beyond `clamp`
  // fold into the clamp bucket (min vl wins).
  for (const auto& [b, v] : children[0]->vl) {
    uint32_t bucket = std::min(b, clamp);
    auto it = tau.vl.find(bucket);
    if (it == tau.vl.end() || v < it->second) tau.vl[bucket] = v;
  }
  auto snapshot = [&](const DpNodeArray& arr) {
    if (!prefixes) return;
    prefixes->emplace_back();
    auto& flat = prefixes->back();
    flat.reserve(arr.vl.size());
    for (const auto& [b, v] : arr.vl) flat.emplace_back(b, v);
  };
  if (prefixes) {
    prefixes->clear();
    prefixes->reserve(children.size());
  }
  snapshot(tau);
  for (size_t i = 1; i < children.size(); ++i) {
    // Pre-fold the child's raw buckets into the clamp (keeping the minimal
    // vl per folded bucket): min(s + min(j,c), c) == min(s + j, c), so the
    // step's result is unchanged and the inner loops see fewer entries.
    std::vector<std::pair<uint32_t, uint64_t>> child_entries;
    {
      std::unordered_map<uint32_t, uint64_t> folded;
      for (const auto& [j_raw, vl_child] : children[i]->vl) {
        uint32_t j = std::min(j_raw, clamp);
        auto it = folded.find(j);
        if (it == folded.end() || vl_child < it->second) folded[j] = vl_child;
      }
      child_entries.assign(folded.begin(), folded.end());
    }
    // Near the root the accumulator approaches one entry per bucket and
    // hash-map traffic dominates the DP; a dense pass over sequential
    // vectors is then several times faster. Sparse stays for thin
    // accumulators (large clamp, few achievable losses), where a clamp-
    // sized sweep would be the waste. Both arms apply the same minimum,
    // so results are identical.
    const bool dense_step =
        tau.vl.size() * 8 > static_cast<size_t>(clamp) + 1;
    if (dense_step) {
      // ⊥ is a large FINITE sentinel here, not kBottom: ⊥ + vl_child must
      // not wrap, so the value pass below needs no per-element absence
      // branch — it is a pure shift-min the compiler vectorizes. Real vl
      // values are bounded by the leaf count, orders of magnitude below
      // the sentinel, so ⊥-derived sums never beat a real entry.
      constexpr uint64_t kDenseInf = uint64_t{1} << 62;
      std::vector<uint64_t> dtau(clamp + 1, kDenseInf);
      for (const auto& [s, v] : tau.vl) dtau[s] = v;  // tau is clamped.
      std::vector<uint64_t> dnext(clamp + 1, kDenseInf);
      for (const auto& [j, vl_child] : child_entries) {
        const uint32_t cap = clamp - j;  // s ≥ cap ⇒ s + j clamps.
        uint64_t* PROVABS_RESTRICT out = dnext.data() + j;
        const uint64_t* PROVABS_RESTRICT in = dtau.data();
        for (uint32_t s = 0; s < cap; ++s) {
          const uint64_t vl = in[s] + vl_child;
          if (vl < out[s]) out[s] = vl;
        }
        uint64_t tail = kDenseInf;
        for (uint32_t s = cap; s <= clamp; ++s) {
          if (dtau[s] < tail) tail = dtau[s];
        }
        if (tail + vl_child < dnext[clamp]) dnext[clamp] = tail + vl_child;
      }
      DpNodeArray next;
      for (uint32_t b = 0; b <= clamp; ++b) {
        if (dnext[b] >= kDenseInf) continue;
        next.vl[b] = dnext[b];
      }
      tau = std::move(next);
    } else {
      DpNodeArray next;
      for (const auto& [s, vl_prefix] : tau.vl) {
        for (const auto& [j, vl_child] : child_entries) {
          uint32_t bucket = std::min<uint64_t>(
              static_cast<uint64_t>(s) + j, clamp);
          uint64_t vl = vl_prefix + vl_child;
          auto it = next.vl.find(bucket);
          if (it == next.vl.end() || vl < it->second) next.vl[bucket] = vl;
        }
      }
      tau = std::move(next);
    }
    snapshot(tau);
  }
  return tau;
}

/// Dense-array variant of the same convolution, used when
/// OptimalOptions::sparse_arrays is false (ablation arm). Produces identical
/// results; only the data structure differs (vectors with ⊥ sentinels).
DpNodeArray ConvolveDense(const std::vector<const DpNodeArray*>& children,
                          uint32_t clamp) {
  PROVABS_CHECK(!children.empty());
  std::vector<uint64_t> tau(clamp + 1, kBottom);
  for (const auto& [b, v] : children[0]->vl) {
    uint32_t bucket = std::min(b, clamp);
    if (v < tau[bucket]) tau[bucket] = v;
  }
  for (size_t i = 1; i < children.size(); ++i) {
    std::vector<uint64_t> dense_child(clamp + 1, kBottom);
    for (const auto& [b, v] : children[i]->vl) {
      uint32_t bucket = std::min(b, clamp);
      if (v < dense_child[bucket]) dense_child[bucket] = v;
    }
    std::vector<uint64_t> next(clamp + 1, kBottom);
    for (uint32_t s = 0; s <= clamp; ++s) {
      if (tau[s] == kBottom) continue;
      for (uint32_t j = 0; j <= clamp; ++j) {
        if (dense_child[j] == kBottom) continue;
        uint32_t bucket = std::min(s + j, clamp);
        uint64_t vl = tau[s] + dense_child[j];
        if (vl < next[bucket]) next[bucket] = vl;
      }
    }
    tau = std::move(next);
  }
  DpNodeArray out;
  for (uint32_t b = 0; b <= clamp; ++b) {
    if (tau[b] != kBottom) out.Offer(b, tau[b], false);
  }
  return out;
}

/// Whole-algorithm state, so reconstruction can re-run convolutions. The
/// arrays are computed once at clamp K (query k + retained headroom); every
/// query and reconstruction runs in the `view`-clamped projection of those
/// arrays, which is bucket-for-bucket identical to what a direct clamp-view
/// DP would have produced.
struct Solver {
  const AbstractionTree* tree;
  const LeafResidualIndex* index;
  uint32_t clamp;  // K: the clamp the arrays hold.
  bool sparse_arrays = true;
  bool height1_shortcut = true;
  Deadline deadline;
  bool budget_exhausted = false;
  std::vector<DpNodeArray> arrays;         // per node (full runs)
  std::vector<LossReport> self_loss;       // per node, loss of VVS {v}
  std::vector<NodeRef>* out_nodes;
  uint32_t tree_index;

  /// Patch mode (OptimalRecompress): reads fall back to the retained
  /// generation's shared per-node arrays and only the nodes recomputed
  /// this run live in `overlay` — the clean majority of the tree is never
  /// copied. unordered_map keeps references stable across inserts, so
  /// child pointers gathered for a convolution survive overlay growth.
  const std::vector<std::shared_ptr<const DpNodeArray>>* base_arrays =
      nullptr;
  std::unordered_map<NodeIndex, DpNodeArray> overlay;

  /// Convolution prefix snapshots, stored alongside the arrays with the
  /// same full/patch split: Reconstruct walks them instead of re-running
  /// the node's convolution. Absent (empty) for leaves, height-1 shortcut
  /// nodes, degraded (budget-expired) nodes, and the dense ablation arm —
  /// Reconstruct then falls back to a one-off view-clamped convolution.
  std::vector<ConvPrefixes> prefix_store;  // per node (full runs)
  const std::vector<std::shared_ptr<const ConvPrefixes>>* base_prefixes =
      nullptr;
  std::unordered_map<NodeIndex, ConvPrefixes> prefix_overlay;

  const DpNodeArray& Arr(NodeIndex v) const {
    if (base_arrays != nullptr) {
      auto it = overlay.find(v);
      if (it != overlay.end()) return it->second;
      return *(*base_arrays)[v];
    }
    return arrays[v];
  }
  DpNodeArray& MutableArr(NodeIndex v) {
    return base_arrays != nullptr ? overlay[v] : arrays[v];
  }
  const ConvPrefixes* PrefixesOf(NodeIndex v) const {
    if (base_arrays != nullptr) {
      auto it = prefix_overlay.find(v);
      if (it != prefix_overlay.end()) {
        return it->second.empty() ? nullptr : &it->second;
      }
      if (base_prefixes != nullptr && (*base_prefixes)[v] != nullptr &&
          !(*base_prefixes)[v]->empty()) {
        return (*base_prefixes)[v].get();
      }
      return nullptr;
    }
    if (v < prefix_store.size() && !prefix_store[v].empty()) {
      return &prefix_store[v];
    }
    return nullptr;
  }

  bool IsHeight1(NodeIndex v) const {
    const auto& n = tree->node(v);
    if (n.is_leaf()) return false;
    for (NodeIndex c : n.children) {
      if (!tree->node(c).is_leaf()) return false;
    }
    return true;
  }

  /// Recomputes one internal node's self loss and array from its (already
  /// current) children. Shared by the full bottom-up pass and the dirty-
  /// path patch pass; the latter passes `refresh_self = false` after
  /// patching self_loss[v] incrementally (PatchNodeLoss), since a from-
  /// scratch NodeLoss at the root re-sorts every key — an O(|P| log |P|)
  /// term the patch exists to avoid.
  void ComputeNode(NodeIndex v, bool refresh_self = true) {
    const auto& node = tree->node(v);
    if (refresh_self) self_loss[v] = index->NodeLoss(v);
    DpNodeArray out;
    if (height1_shortcut && IsHeight1(v)) {
      // Children are all leaves: the convolution is trivially {0:0}.
      out.Offer(0, 0, false);
    } else {
      std::vector<const DpNodeArray*> children;
      children.reserve(node.children.size());
      for (NodeIndex c : node.children) children.push_back(&Arr(c));
      if (sparse_arrays) {
        ConvPrefixes prefs;
        out = Convolve(children, clamp, &prefs);
        if (base_arrays != nullptr) {
          prefix_overlay[v] = std::move(prefs);
        } else {
          prefix_store[v] = std::move(prefs);
        }
      } else {
        out = ConvolveDense(children, clamp);
      }
    }
    uint32_t self_bucket = std::min<uint64_t>(
        self_loss[v].monomial_loss, clamp);
    out.Offer(self_bucket, self_loss[v].variable_loss, true);
    MutableArr(v) = std::move(out);
  }

  void ComputeArrays() {
    const size_t n = tree->node_count();
    arrays.resize(n);
    prefix_store.resize(n);
    self_loss.resize(n);
    // DFS pre-order storage: reverse iteration is post-order.
    for (size_t i = n; i-- > 0;) {
      NodeIndex v = static_cast<NodeIndex>(i);
      const auto& node = tree->node(v);
      if (node.is_leaf()) {
        arrays[v].Offer(0, 0, false);
        continue;
      }
      // One wall-clock check per node bounds the overrun by a single
      // convolution. Expiry does NOT abort: the remaining nodes get
      // degraded arrays — the all-leaves cut {0:0} plus the node's own
      // singleton — skipping only the convolutions. Every array still
      // contains bucket 0, so reconstruction stays well-defined, and the
      // root's self entry carries the tree-maximal ML, so feasibility at
      // any k is decided exactly as the full DP would.
      if (!budget_exhausted && deadline.Expired()) budget_exhausted = true;
      if (budget_exhausted) {
        self_loss[v] = index->NodeLoss(v);
        arrays[v].Offer(0, 0, false);
        uint32_t self_bucket = std::min<uint64_t>(
            self_loss[v].monomial_loss, clamp);
        arrays[v].Offer(self_bucket, self_loss[v].variable_loss, true);
        continue;
      }
      ComputeNode(v);
    }
  }

  /// Minimal vl at `bucket` in the `view`-clamped projection of arrays[v]:
  /// min over raw entries whose bucket clamps to `bucket`.
  uint64_t ViewedGet(NodeIndex v, uint32_t bucket, uint32_t view) const {
    uint64_t best = kBottom;
    for (const auto& [b, value] : Arr(v).vl) {
      if (std::min(b, view) != bucket) continue;
      if (value < best) best = value;
    }
    return best;
  }

  /// Whether the `view`-clamped optimum at `bucket` is the singleton {v}.
  /// Reproduces Offer's strict-improvement rule: the self entry wins only
  /// if it is strictly below every convolution-derived candidate folding
  /// into this bucket. (Raw buckets where self displaced the convolution
  /// value hide a convolution candidate, but that candidate was strictly
  /// larger than the self value there, so the comparison is unaffected.)
  bool ViewedUsesSelf(NodeIndex v, uint32_t bucket, uint32_t view) const {
    uint64_t best_self = kBottom;
    uint64_t best_other = kBottom;
    for (const auto& [b, value] : Arr(v).vl) {
      if (std::min(b, view) != bucket) continue;
      if (Arr(v).UsesSelf(b)) {
        if (value < best_self) best_self = value;
      } else {
        if (value < best_other) best_other = value;
      }
    }
    return best_self < best_other;
  }

  /// Reconstructs the cut achieving the `view`-clamped arrays[v] at
  /// `bucket` (a view-clamped bucket) into out_nodes.
  void Reconstruct(NodeIndex v, uint32_t bucket, uint32_t view) {
    const auto& node = tree->node(v);
    if (node.is_leaf()) {
      PROVABS_CHECK(bucket == 0);
      out_nodes->push_back(NodeRef{tree_index, v});
      return;
    }
    if (ViewedUsesSelf(v, bucket, view)) {
      out_nodes->push_back(NodeRef{tree_index, v});
      return;
    }
    if (height1_shortcut && IsHeight1(v)) {
      PROVABS_CHECK(bucket == 0);
      for (NodeIndex c : node.children) {
        out_nodes->push_back(NodeRef{tree_index, c});
      }
      return;
    }
    // Degraded (budget-expired) arrays carry no convolution entries beyond
    // bucket 0; the only non-self reconstruction through them is the
    // all-leaves cut, which the recursion below resolves (every child has
    // bucket 0).
    //
    // Prefix walk: recover the canonical split per child from the
    // convolution's retained prefix snapshots instead of re-running the
    // convolution. The snapshots sit at the clamp they were computed at
    // (K for retained DP runs, `view` for the fallback below); the walk
    // reads only their view-projections, which by the clamping lemma are
    // identical either way. Canonical choices reproduce the old
    // split-recording conv exactly: smallest prefix bucket s among optimal
    // (s, child) pairs, then smallest child vl, then smallest child bucket.
    const size_t w = node.children.size();
    std::vector<const DpNodeArray*> children;
    children.reserve(w);
    for (NodeIndex c : node.children) children.push_back(&Arr(c));
    const ConvPrefixes* prefs = PrefixesOf(v);
    ConvPrefixes local;
    if (prefs == nullptr || prefs->size() != w) {
      Convolve(children, view, &local);
      prefs = &local;
    }
    // Dense view-projection of one prefix snapshot: proj[min(b, view)] =
    // min value over folding raw buckets.
    auto project = [&](const std::vector<std::pair<uint32_t, uint64_t>>& fl,
                       std::vector<uint64_t>& out) {
      out.assign(view + 1, kBottom);
      for (const auto& [b, val] : fl) {
        uint32_t pb = std::min(b, view);
        if (val < out[pb]) out[pb] = val;
      }
    };
    std::vector<uint64_t> proj_cur, proj_prev;
    project((*prefs)[w - 1], proj_cur);
    PROVABS_CHECK(proj_cur[bucket] != kBottom);

    // child_buckets[i] = view-clamped bucket of child i in the chosen
    // combination.
    std::vector<uint32_t> child_buckets(w, 0);
    uint32_t j = bucket;
    for (size_t i = w; i-- > 1;) {
      const uint64_t target = proj_cur[j];
      project((*prefs)[i - 1], proj_prev);
      // Child i's entries folded into the view, sorted by bucket.
      std::vector<std::pair<uint32_t, uint64_t>> folded;
      {
        std::unordered_map<uint32_t, uint64_t> fold;
        for (const auto& [jc_raw, vlc] : children[i]->vl) {
          uint32_t jc = std::min(jc_raw, view);
          auto it = fold.find(jc);
          if (it == fold.end() || vlc < it->second) fold[jc] = vlc;
        }
        folded.assign(fold.begin(), fold.end());
        std::sort(folded.begin(), folded.end());
      }
      bool found = false;
      uint32_t s_pick = 0, jc_pick = 0;
      if (j < view) {
        // min(s + jc, view) = j < view forces s = j − jc exactly, so the
        // smallest admissible s is the largest admissible jc. Every
        // candidate pair scores ≥ target (it folds into this bucket), so
        // equality identifies a true witness.
        for (size_t e = folded.size(); e-- > 0;) {
          const uint32_t jc = folded[e].first;
          if (jc > j) continue;
          const uint32_t s = j - jc;
          if (proj_prev[s] != kBottom &&
              proj_prev[s] + folded[e].second == target) {
            s_pick = s;
            jc_pick = jc;
            found = true;
            break;
          }
        }
      } else {
        // j == view collects every pair with s + jc ≥ view. An s admits a
        // witness iff the minimal child vl over admissible buckets
        // (jc ≥ view − s) equals target − proj_prev[s] — candidates can
        // only score ≥ target, so min hits it exactly when one exists.
        // Scanning s ascending yields the canonical smallest split.
        std::vector<uint64_t> suffix_min(folded.size() + 1, kBottom);
        for (size_t e = folded.size(); e-- > 0;) {
          suffix_min[e] = std::min(suffix_min[e + 1], folded[e].second);
        }
        for (uint32_t s = 0; s <= view && !found; ++s) {
          if (proj_prev[s] == kBottom || proj_prev[s] > target) continue;
          const uint64_t need = target - proj_prev[s];
          const uint32_t min_jc = view - s;
          size_t e0 = static_cast<size_t>(
              std::lower_bound(folded.begin(), folded.end(),
                               std::make_pair(min_jc, uint64_t{0})) -
              folded.begin());
          if (e0 < folded.size() && suffix_min[e0] == need) {
            for (size_t e = e0; e < folded.size(); ++e) {
              if (folded[e].second == need) {
                s_pick = s;
                jc_pick = folded[e].first;
                found = true;
                break;
              }
            }
          }
        }
      }
      PROVABS_CHECK(found);
      child_buckets[i] = jc_pick;
      j = s_pick;
      proj_cur = std::move(proj_prev);
    }
    child_buckets[0] = j;
    for (size_t i = 0; i < w; ++i) {
      Reconstruct(node.children[i], child_buckets[i], view);
    }
  }
};

/// Builds the forest-wide result from the cut chosen on `tree_index`:
/// leaves of OTHER trees are untouched by the single-tree algorithm and
/// are appended so the VVS is valid for the whole forest.
///
/// The cut's loss is the SUM of the chosen nodes' singleton losses: chosen
/// nodes cover disjoint leaf ranges and each monomial carries at most one
/// variable of the tree, so monomials merge only within one chosen node's
/// range and vanished/introduced variables never overlap across nodes —
/// the same additivity the DP's (min,+) convolution is built on. Summing
/// `self_loss` makes finishing O(|cut|) where ComputeLossNaive would
/// materialize the whole compressed set, which matters to the patch path:
/// an O(|P|) finish would swamp the dirty-path recompute it saved. (Like
/// the DP itself, this counts merges by residual-key identity and so
/// relies on provenance coefficients never cancelling to zero — Claim 25.)
CompressionResult FinishResult(std::vector<NodeRef> chosen,
                               const AbstractionForest& forest,
                               uint32_t tree_index,
                               const std::vector<LossReport>& self_loss,
                               uint32_t k) {
  LossReport loss;
  for (const NodeRef& ref : chosen) {
    loss.monomial_loss += self_loss[ref.node].monomial_loss;
    loss.variable_loss += self_loss[ref.node].variable_loss;
  }
  for (uint32_t t = 0; t < forest.tree_count(); ++t) {
    if (t == tree_index) continue;
    for (NodeIndex leaf : forest.tree(t).leaves()) {
      chosen.push_back(NodeRef{t, leaf});
    }
  }
  CompressionResult result;
  result.vvs = ValidVariableSet(std::move(chosen));
  result.loss = loss;
  result.adequate = result.loss.monomial_loss >= k;
  return result;
}

}  // namespace

StatusOr<CompressionResult> OptimalSingleTree(
    const PolynomialSet& polys, const AbstractionForest& forest,
    uint32_t tree_index, size_t bound_b, const OptimalOptions& options) {
  if (tree_index >= forest.tree_count()) {
    return Status::InvalidArgument("tree index out of range");
  }
  const AbstractionTree& tree = forest.tree(tree_index);
  Status compat = tree.CheckCompatible(polys);
  if (!compat.ok()) return compat;
  if (bound_b == 0) {
    return Status::InvalidArgument("bound must be at least 1");
  }

  const size_t size_m = polys.SizeM();
  const uint32_t k = bound_b >= size_m
                         ? 0u
                         : static_cast<uint32_t>(size_m - bound_b);
  // Arrays are computed with headroom above k so a retained run can absorb
  // appends; the query below always runs in the k-clamped view, so the
  // answer is independent of the headroom.
  const uint32_t clamp = static_cast<uint32_t>(std::min<uint64_t>(
      size_m, static_cast<uint64_t>(k) + options.retain_headroom));

  LeafResidualIndex index(polys, tree);
  Solver solver;
  solver.tree = &tree;
  solver.index = &index;
  solver.clamp = clamp;
  solver.sparse_arrays = options.sparse_arrays;
  solver.height1_shortcut = options.height1_shortcut;
  solver.deadline = options.deadline;
  solver.tree_index = tree_index;
  solver.ComputeArrays();

  if (solver.ViewedGet(tree.root(), k, k) == kBottom) {
    return Status::Infeasible(
        "no valid variable set of the tree is adequate for the bound");
  }

  std::vector<NodeRef> chosen;
  solver.out_nodes = &chosen;
  solver.Reconstruct(tree.root(), k, k);

  std::vector<NodeIndex> chosen_here;
  chosen_here.reserve(chosen.size());
  for (const NodeRef& ref : chosen) chosen_here.push_back(ref.node);

  CompressionResult result =
      FinishResult(std::move(chosen), forest, tree_index, solver.self_loss, k);
  result.budget_exhausted = solver.budget_exhausted;
  if (options.retain_state && !solver.budget_exhausted) {
    auto state = std::make_shared<RetainedDpState>(std::move(index));
    state->tree_index = tree_index;
    state->bound = bound_b;
    state->size_m = size_m;
    state->revision = polys.revision();
    state->clamp = clamp;
    state->sparse_arrays = options.sparse_arrays;
    state->height1_shortcut = options.height1_shortcut;
    state->node_count = tree.node_count();
    state->leaf_labels.reserve(tree.leaves().size());
    for (NodeIndex leaf : tree.leaves()) {
      state->leaf_labels.push_back(tree.node(leaf).label);
    }
    state->arrays.reserve(solver.arrays.size());
    for (DpNodeArray& a : solver.arrays) {
      state->arrays.push_back(std::make_shared<DpNodeArray>(std::move(a)));
    }
    state->prefixes.reserve(solver.prefix_store.size());
    for (ConvPrefixes& p : solver.prefix_store) {
      state->prefixes.push_back(
          std::make_shared<ConvPrefixes>(std::move(p)));
    }
    state->self_loss = std::move(solver.self_loss);
    state->chosen = std::move(chosen_here);
    result.dp_state = std::move(state);
  }
  return result;
}

const char* RecompressFallbackName(RecompressFallback fallback) {
  switch (fallback) {
    case RecompressFallback::kNone: return "none";
    case RecompressFallback::kNoState: return "no_state";
    case RecompressFallback::kDeltaIncomplete: return "delta_incomplete";
    case RecompressFallback::kShapeChanged: return "shape_changed";
    case RecompressFallback::kHeadroomExhausted: return "headroom_exhausted";
    case RecompressFallback::kCrossesCut: return "crosses_cut";
  }
  return "unknown";
}

StatusOr<CompressionResult> OptimalRecompress(
    const PolynomialSet& polys, const AbstractionForest& forest,
    const CompressionResult& prev, const PolynomialSetDelta& delta,
    size_t bound_b, RecompressFallback* fallback) {
  auto fail = [&](RecompressFallback why, const char* message) {
    if (fallback) *fallback = why;
    return Status::FailedPrecondition(message);
  };
  if (fallback) *fallback = RecompressFallback::kNone;
  if (bound_b == 0) {
    return Status::InvalidArgument("bound must be at least 1");
  }
  if (prev.dp_state == nullptr) {
    return fail(RecompressFallback::kNoState,
                "previous result carries no retained DP tables");
  }
  const RetainedDpState& st = *prev.dp_state;
  if (st.bound != bound_b) {
    return fail(RecompressFallback::kNoState,
                "retained tables were computed for a different bound");
  }
  if (!delta.complete || delta.from_revision != st.revision ||
      delta.to_revision != polys.revision()) {
    return fail(RecompressFallback::kDeltaIncomplete,
                "delta log does not cover the retained revision span");
  }
  if (st.tree_index >= forest.tree_count()) {
    return fail(RecompressFallback::kShapeChanged,
                "retained tree index no longer exists in the forest");
  }
  const AbstractionTree& tree = forest.tree(st.tree_index);
  // The delta gates above proved the prefix is exactly the set the
  // retained run validated, so only the appended suffix needs checking —
  // a whole-set rescan here would put an O(|P|) term on the patch path.
  Status compat = tree.CheckCompatible(polys, delta.first_added_index);
  if (!compat.ok()) return compat;
  bool same_shape = tree.node_count() == st.node_count &&
                    tree.leaves().size() == st.leaf_labels.size();
  if (same_shape) {
    for (size_t i = 0; i < st.leaf_labels.size(); ++i) {
      if (tree.node(tree.leaves()[i]).label != st.leaf_labels[i]) {
        same_shape = false;
        break;
      }
    }
  }
  if (!same_shape) {
    return fail(RecompressFallback::kShapeChanged,
                "tree shape differs from the retained run");
  }
  const size_t size_m = polys.SizeM();
  if (st.size_m + delta.added_monomials != size_m) {
    return fail(RecompressFallback::kDeltaIncomplete,
                "delta monomial count does not reconcile with |P|_M");
  }
  const uint32_t k = bound_b >= size_m
                         ? 0u
                         : static_cast<uint32_t>(size_m - bound_b);
  if (k > st.clamp) {
    return fail(RecompressFallback::kHeadroomExhausted,
                "new k exceeds the retained bucket clamp");
  }

  // Copy-on-patch: the retained state stays immutable for other readers.
  // The per-node arrays are shared pointers, so this copies O(tree) handles
  // plus the residual index — not the DP tables themselves.
  auto next = std::make_shared<RetainedDpState>(st);
  next->index.Rebind(tree);
  LeafResidualIndex::AppendDelta appended =
      next->index.AppendPolynomials(polys);

  if (!appended.dirty.empty()) {
    // Frontier test: an append landing strictly below a chosen internal
    // node changes the interior the previous cut abstracted away — the
    // ISSUE's contract is to recompress that from scratch.
    for (NodeIndex c : st.chosen) {
      const auto& node = tree.node(c);
      if (node.is_leaf()) continue;
      for (uint32_t pos : appended.dirty) {
        if (pos >= node.leaf_begin && pos < node.leaf_end) {
          return fail(RecompressFallback::kCrossesCut,
                      "append touches a leaf inside the abstracted cut");
        }
      }
    }
  }

  Solver solver;
  solver.tree = &tree;
  solver.index = &next->index;
  solver.clamp = st.clamp;
  solver.sparse_arrays = st.sparse_arrays;
  solver.height1_shortcut = st.height1_shortcut;
  solver.tree_index = st.tree_index;
  solver.base_arrays = &next->arrays;
  solver.base_prefixes = &next->prefixes;
  solver.self_loss = std::move(next->self_loss);

  if (!appended.dirty.empty()) {
    // Recompute exactly the ancestors of dirty leaves, bottom-up (reverse
    // pre-order). Clean subtrees' arrays are byte-identical to what a full
    // re-run would compute, so reusing them preserves field-equality.
    // Dirty nodes' self losses are patched from the append delta rather
    // than recomputed — NodeLoss at the root would re-sort every key.
    const size_t n = tree.node_count();
    std::vector<NodeIndex> parent(n, static_cast<NodeIndex>(n));
    for (NodeIndex v = 0; v < n; ++v) {
      for (NodeIndex c : tree.node(v).children) parent[c] = v;
    }
    std::vector<char> dirty(n, 0);
    for (uint32_t pos : appended.dirty) {
      NodeIndex v = tree.leaves()[pos];
      while (v < n && !dirty[v]) {
        dirty[v] = 1;
        v = parent[v];
      }
    }
    for (size_t i = n; i-- > 0;) {
      NodeIndex v = static_cast<NodeIndex>(i);
      if (!dirty[v] || tree.node(v).is_leaf()) continue;
      solver.self_loss[v] =
          next->index.PatchNodeLoss(v, solver.self_loss[v], appended);
      solver.ComputeNode(v, /*refresh_self=*/false);
    }
  }

  if (solver.ViewedGet(tree.root(), k, k) == kBottom) {
    return Status::Infeasible(
        "no valid variable set of the tree is adequate for the bound");
  }
  std::vector<NodeRef> chosen;
  solver.out_nodes = &chosen;
  solver.Reconstruct(tree.root(), k, k);

  std::vector<NodeIndex> chosen_here;
  chosen_here.reserve(chosen.size());
  for (const NodeRef& ref : chosen) chosen_here.push_back(ref.node);

  CompressionResult result = FinishResult(std::move(chosen), forest,
                                          st.tree_index, solver.self_loss, k);
  // Publish the recomputed arrays; every other node keeps aliasing the
  // previous generation's (identical) table.
  for (auto& [v, arr] : solver.overlay) {
    next->arrays[v] = std::make_shared<DpNodeArray>(std::move(arr));
  }
  for (auto& [v, prefs] : solver.prefix_overlay) {
    next->prefixes[v] = std::make_shared<ConvPrefixes>(std::move(prefs));
  }
  next->self_loss = std::move(solver.self_loss);
  next->size_m = size_m;
  next->revision = delta.to_revision;
  next->chosen = std::move(chosen_here);
  result.dp_state = std::move(next);
  return result;
}

namespace internal {

StatusOr<std::vector<std::pair<uint32_t, uint64_t>>> RootLossProfile(
    const PolynomialSet& polys, const AbstractionForest& forest,
    uint32_t tree_index) {
  if (tree_index >= forest.tree_count()) {
    return Status::InvalidArgument("tree index out of range");
  }
  const AbstractionTree& tree = forest.tree(tree_index);
  Status compat = tree.CheckCompatible(polys);
  if (!compat.ok()) return compat;

  const size_t size_m = polys.SizeM();
  // clamp = |P|_M exceeds every achievable monomial loss (at least one
  // monomial always survives per non-empty polynomial), so no bucket is
  // clamped and the root array is exact at every entry.
  LeafResidualIndex index(polys, tree);
  Solver solver;
  solver.tree = &tree;
  solver.index = &index;
  solver.clamp = static_cast<uint32_t>(size_m);
  solver.tree_index = tree_index;
  // The default deadline is infinite; the DP cannot degrade.
  solver.ComputeArrays();

  const DpNodeArray& root = solver.arrays[tree.root()];
  std::vector<std::pair<uint32_t, uint64_t>> profile(root.vl.begin(),
                                                     root.vl.end());
  std::sort(profile.begin(), profile.end());
  return profile;
}

}  // namespace internal

}  // namespace provabs
