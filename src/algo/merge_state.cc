#include "algo/merge_state.h"

#include <algorithm>
#include <unordered_set>

#include "common/macros.h"

namespace provabs {

namespace {

// Sentinel used when hashing a hypothetical merge target.
constexpr VariableId kMergeSentinel = 0xFFFFFFFDu;

}  // namespace

uint64_t MergeState::HashFactors(size_t poly_index,
                                 const std::vector<Factor>& factors) {
  uint64_t h = 0xCBF29CE484222325ULL ^ (poly_index * 0x9E3779B97F4A7C15ULL);
  auto mix = [&h](uint64_t x) {
    h ^= x;
    h *= 0x100000001B3ULL;
  };
  for (const Factor& f : factors) {
    mix(f.var);
    mix(f.exp);
  }
  return h;
}

uint64_t MergeState::HashMappedKey(uint32_t poly,
                                   const std::vector<Factor>& factors,
                                   VariableId from, VariableId to) const {
  // Factors are sorted by variable id; substituting `from`->`to` may change
  // the sort position, so we re-sort a small local copy (factor lists are
  // short — bounded by the query's join arity).
  std::vector<Factor> mapped = factors;
  for (Factor& f : mapped) {
    if (f.var == from) f.var = to;
  }
  std::sort(mapped.begin(), mapped.end(),
            [](const Factor& a, const Factor& b) { return a.var < b.var; });
  // Merge equal variables (can only happen if `to` already occurred, which
  // compatibility rules out for tree merges, but stay correct regardless).
  size_t out = 0;
  for (size_t i = 0; i < mapped.size(); ++i) {
    if (out > 0 && mapped[out - 1].var == mapped[i].var) {
      mapped[out - 1].exp += mapped[i].exp;
    } else {
      mapped[out++] = mapped[i];
    }
  }
  mapped.resize(out);
  return HashFactors(poly, mapped);
}

MergeState::MergeState(const PolynomialSet& polys) {
  const size_t n = polys.count();
  monos_.resize(n);
  keys_.resize(n);
  key_counts_.resize(n);
  for (uint32_t pi = 0; pi < n; ++pi) {
    const auto& monomials = polys[pi].monomials();
    monos_[pi].reserve(monomials.size());
    keys_[pi].reserve(monomials.size());
    for (uint32_t mi = 0; mi < monomials.size(); ++mi) {
      monos_[pi].push_back(monomials[mi].factors());
      uint64_t key = HashFactors(pi, monos_[pi].back());
      keys_[pi].push_back(key);
      auto [it, inserted] = key_counts_[pi].emplace(key, 1u);
      if (!inserted) {
        ++it->second;  // Duplicate power products cannot occur in canonical
                       // polynomials, but hash collisions could land here.
      } else {
        ++total_m_;
      }
      for (const Factor& f : monomials[mi].factors()) {
        occ_[f.var].push_back(MonoRef{pi, mi});
      }
    }
  }
  original_m_ = total_m_;
}

size_t MergeState::OccurrenceCount(VariableId var) const {
  auto it = occ_.find(var);
  return it == occ_.end() ? 0 : it->second.size();
}

size_t MergeState::EvaluateMergeGain(
    const std::vector<VariableId>& vars) const {
  // Distinct current keys among affected monomials, and distinct keys after
  // rewriting each affected variable to a common sentinel. The gain is the
  // difference (see §4.1: merged monomials become identical).
  std::unordered_set<uint64_t> old_keys;
  std::unordered_set<uint64_t> new_keys;
  for (VariableId v : vars) {
    auto it = occ_.find(v);
    if (it == occ_.end()) continue;
    for (const MonoRef& ref : it->second) {
      old_keys.insert(keys_[ref.poly][ref.mono]);
      new_keys.insert(
          HashMappedKey(ref.poly, monos_[ref.poly][ref.mono], v,
                        kMergeSentinel));
    }
  }
  PROVABS_DCHECK(old_keys.size() >= new_keys.size());
  return old_keys.size() - new_keys.size();
}

size_t MergeState::ApplyMerge(const std::vector<VariableId>& vars,
                              VariableId target) {
  std::vector<MonoRef> merged_occ;
  size_t active_merged = 0;
  for (VariableId v : vars) {
    auto it = occ_.find(v);
    if (it == occ_.end()) continue;
    ++active_merged;
    if (v == target) {
      // Renaming to itself: keep occurrences, no rewriting needed.
      merged_occ.insert(merged_occ.end(), it->second.begin(),
                        it->second.end());
      occ_.erase(it);
      continue;
    }
    for (const MonoRef& ref : it->second) {
      auto& factors = monos_[ref.poly][ref.mono];
      uint64_t old_key = keys_[ref.poly][ref.mono];
      auto& counts = key_counts_[ref.poly];
      auto cit = counts.find(old_key);
      PROVABS_DCHECK(cit != counts.end());
      if (--cit->second == 0) {
        counts.erase(cit);
        --total_m_;
      }

      // Rewrite v -> target in place and restore factor canonicity.
      for (Factor& f : factors) {
        if (f.var == v) f.var = target;
      }
      std::sort(factors.begin(), factors.end(),
                [](const Factor& a, const Factor& b) { return a.var < b.var; });
      size_t out = 0;
      for (size_t i = 0; i < factors.size(); ++i) {
        if (out > 0 && factors[out - 1].var == factors[i].var) {
          factors[out - 1].exp += factors[i].exp;
        } else {
          factors[out++] = factors[i];
        }
      }
      factors.resize(out);

      uint64_t new_key = HashFactors(ref.poly, factors);
      keys_[ref.poly][ref.mono] = new_key;
      auto [nit, inserted] = counts.emplace(new_key, 1u);
      if (!inserted) {
        ++nit->second;
      } else {
        ++total_m_;
      }
      merged_occ.push_back(ref);
    }
    occ_.erase(v);
  }
  if (!merged_occ.empty()) {
    auto& target_occ = occ_[target];
    target_occ.insert(target_occ.end(), merged_occ.begin(), merged_occ.end());
  }
  if (active_merged > 1) variable_loss_ += active_merged - 1;
  return active_merged;
}

}  // namespace provabs
