#include "algo/compressor.h"

#include <algorithm>
#include <utility>

#include "algo/brute_force.h"
#include "algo/greedy_multi_tree.h"
#include "algo/optimal_single_tree.h"
#include "algo/prox_summarizer.h"

namespace provabs {

// ------------------------------------------------- CompressionResult ----

PolynomialSet CompressionResult::Apply(const AbstractionForest& forest,
                                       const PolynomialSet& polys,
                                       CoefficientCombine combine) const {
  if (!grouping) return vvs.Apply(forest, polys, combine);
  return polys.MapVariables(SubstitutionFn(substitution), combine);
}

namespace {

/// The canonical display/intern name of a merged group: its member names,
/// sorted and '+'-joined. Describe (the rendered label) and InternGrouping
/// (the persisted variable name) MUST agree byte-for-byte, so both go
/// through this one function.
std::string JoinedGroupName(const std::vector<VariableId>& members,
                            const VariableTable& vars) {
  std::vector<std::string> names;
  names.reserve(members.size());
  for (VariableId member : members) names.push_back(vars.NameOf(member));
  std::sort(names.begin(), names.end());
  std::string joined = names[0];
  for (size_t i = 1; i < names.size(); ++i) joined += "+" + names[i];
  return joined;
}

/// substitution inverted: representative -> members.
std::unordered_map<VariableId, std::vector<VariableId>> GroupsOf(
    const std::unordered_map<VariableId, VariableId>& substitution) {
  std::unordered_map<VariableId, std::vector<VariableId>> groups;
  for (const auto& [member, rep] : substitution) {
    groups[rep].push_back(member);
  }
  return groups;
}

}  // namespace

std::string CompressionResult::Describe(const AbstractionForest& forest,
                                        const VariableTable& vars) const {
  if (!grouping) return vvs.ToString(forest, vars);
  // Render each group's canonical name, then sort the group strings — the
  // substitution map's iteration order must never leak into wire or cache
  // payloads.
  std::vector<std::string> rendered;
  for (const auto& [rep, members] : GroupsOf(substitution)) {
    rendered.push_back(JoinedGroupName(members, vars));
  }
  std::sort(rendered.begin(), rendered.end());
  std::string s = "{";
  for (size_t i = 0; i < rendered.size(); ++i) {
    if (i > 0) s += ", ";
    s += rendered[i];
  }
  s += "}";
  return s;
}

void CompressionResult::InternGrouping(VariableTable& vars) {
  if (!grouping) return;
  // A singleton group whose representative IS its member is already
  // table-resident; everything else gets its canonical joined name.
  for (const auto& [rep, members] : GroupsOf(substitution)) {
    if (members.size() == 1 && members[0] == rep) continue;
    VariableId interned = vars.Intern(JoinedGroupName(members, vars));
    for (VariableId member : members) substitution[member] = interned;
  }
}

// ------------------------------------------------- builtin adapters -----

namespace {

class OptCompressor : public Compressor {
 public:
  const CompressorInfo& info() const override {
    static const CompressorInfo kInfo{
        "opt", "optimal single-tree DP (Algorithm 1)", /*deterministic=*/true,
        /*supports_tradeoff=*/true, /*exact=*/true, /*produces_cut=*/true,
        /*supports_time_budget=*/true};
    return kInfo;
  }

  StatusOr<CompressionResult> Compress(
      const PolynomialSet& polys, const AbstractionForest& forest,
      const CompressOptions& options) const override {
    OptimalOptions opt;
    if (options.time_budget_ms > 0) {
      opt.deadline = Deadline::AfterMillis(options.time_budget_ms);
    }
    return OptimalSingleTree(polys, forest, options.root, options.bound, opt);
  }
};

class GreedyCompressor : public Compressor {
 public:
  const CompressorInfo& info() const override {
    static const CompressorInfo kInfo{
        "greedy", "greedy multi-tree heuristic (Algorithm 2)",
        /*deterministic=*/true, /*supports_tradeoff=*/false,
        /*exact=*/false, /*produces_cut=*/true,
        /*supports_time_budget=*/true};
    return kInfo;
  }

  StatusOr<CompressionResult> Compress(
      const PolynomialSet& polys, const AbstractionForest& forest,
      const CompressOptions& options) const override {
    GreedyOptions greedy;
    if (options.time_budget_ms > 0) {
      greedy.deadline = Deadline::AfterMillis(options.time_budget_ms);
    }
    return GreedyMultiTree(polys, forest, options.bound, greedy);
  }
};

class BruteCompressor : public Compressor {
 public:
  const CompressorInfo& info() const override {
    static const CompressorInfo kInfo{
        "brute", "exhaustive cut enumeration (ground-truth baseline)",
        /*deterministic=*/true, /*supports_tradeoff=*/false,
        /*exact=*/true, /*produces_cut=*/true,
        /*supports_time_budget=*/true};
    return kInfo;
  }

  StatusOr<CompressionResult> Compress(
      const PolynomialSet& polys, const AbstractionForest& forest,
      const CompressOptions& options) const override {
    BruteForceOptions brute;
    if (options.time_budget_ms > 0) {
      brute.deadline = Deadline::AfterMillis(options.time_budget_ms);
    }
    return BruteForce(polys, forest, options.bound, brute);
  }
};

class ProxCompressor : public Compressor {
 public:
  const CompressorInfo& info() const override {
    static const CompressorInfo kInfo{
        "prox", "pairwise-merge summarizer of Ainy et al. (competitor)",
        /*deterministic=*/true, /*supports_tradeoff=*/false,
        /*exact=*/false, /*produces_cut=*/false,
        /*supports_time_budget=*/true};
    return kInfo;
  }

  StatusOr<CompressionResult> Compress(
      const PolynomialSet& polys, const AbstractionForest& forest,
      const CompressOptions& options) const override {
    ProxOptions prox;
    if (options.time_budget_ms > 0) {
      prox.deadline = Deadline::AfterMillis(options.time_budget_ms);
    }
    auto result = ProxSummarize(polys, forest, options.bound, prox);
    if (!result.ok()) return result.status();
    CompressionResult unified;
    unified.loss = result->loss;
    unified.adequate = result->adequate;
    unified.grouping = true;
    unified.substitution = std::move(result->substitution);
    return unified;
  }
};

}  // namespace

// ------------------------------------------------- registry -------------

CompressorRegistry& CompressorRegistry::Default() {
  static CompressorRegistry* registry = [] {
    auto* r = new CompressorRegistry();
    // The built-ins carry distinct hardcoded names; registration cannot
    // fail on a fresh registry.
    Status s = RegisterBuiltinCompressors(*r);
    (void)s;
    return r;
  }();
  return *registry;
}

Status CompressorRegistry::Register(std::unique_ptr<Compressor> compressor) {
  if (compressor == nullptr) {
    return Status::InvalidArgument("cannot register a null compressor");
  }
  const std::string& name = compressor->info().name;
  if (name.empty()) {
    return Status::InvalidArgument("compressor name must be non-empty");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = by_name_.emplace(name, std::move(compressor));
  (void)it;
  if (!inserted) {
    return Status::InvalidArgument("compressor '" + name +
                                   "' is already registered");
  }
  return Status::OK();
}

const Compressor* CompressorRegistry::Find(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second.get();
}

StatusOr<const Compressor*> CompressorRegistry::Resolve(
    const std::string& name) const {
  const Compressor* compressor = Find(name);
  if (compressor == nullptr) {
    return Status::InvalidArgument("unknown algorithm '" + name +
                                   "' (registered: " + NamesCsv() + ")");
  }
  return compressor;
}

std::vector<std::string> CompressorRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(by_name_.size());
  for (const auto& [name, compressor] : by_name_) names.push_back(name);
  return names;  // std::map iterates in sorted order.
}

std::vector<CompressorInfo> CompressorRegistry::Infos() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<CompressorInfo> infos;
  infos.reserve(by_name_.size());
  for (const auto& [name, compressor] : by_name_) {
    infos.push_back(compressor->info());
  }
  return infos;
}

std::string CompressorRegistry::NamesCsv() const {
  std::vector<std::string> names = Names();
  std::string csv;
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) csv += ", ";
    csv += names[i];
  }
  return csv;
}

Status RegisterBuiltinCompressors(CompressorRegistry& registry) {
  Status s = registry.Register(std::make_unique<OptCompressor>());
  if (!s.ok()) return s;
  s = registry.Register(std::make_unique<GreedyCompressor>());
  if (!s.ok()) return s;
  s = registry.Register(std::make_unique<BruteCompressor>());
  if (!s.ok()) return s;
  return registry.Register(std::make_unique<ProxCompressor>());
}

}  // namespace provabs
