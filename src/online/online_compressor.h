#ifndef PROVABS_ONLINE_ONLINE_COMPRESSOR_H_
#define PROVABS_ONLINE_ONLINE_COMPRESSOR_H_

#include <functional>
#include <string>
#include <vector>

#include "abstraction/abstraction_forest.h"
#include "abstraction/valid_variable_set.h"
#include "algo/optimal_single_tree.h"
#include "common/random.h"
#include "common/statusor.h"
#include "core/polynomial_set.h"
#include "engine/table.h"
#include "online/sampler.h"

namespace provabs {

/// The §6 online-compression pipeline ("Conclusion and Future Work"):
/// instead of materializing the full provenance and compressing it offline,
///   1. draw a sample of the database (group-aware when the query is a
///      GROUP BY, per the paper's heuristic);
///   2. run the provenance query on the sample;
///   3. estimate the full provenance size by extrapolating from a few
///      nested sample rates, and scale the user's bound down accordingly;
///   4. choose a VVS on the sample (greedy, or optimal when the forest is
///      a single tree);
///   5. evaluate the full query with variables pre-grouped through that
///      VVS, so the full-size provenance expression never materializes.
///
/// Step 5 is simulated here by applying the VVS substitution to the full
/// query's annotations as they are produced — equivalent to annotating the
/// input with meta-variables up front.
struct OnlineOptions {
  /// Sampling rates used for the nested size-extrapolation samples. The
  /// last rate is also the decision sample from which the VVS is chosen.
  std::vector<double> sample_rates = {0.05, 0.1, 0.2};
  /// Tables to sample (the fact/grouping relations); others stay intact.
  std::vector<std::string> sampled_tables;
  /// Compression algorithm for the decision sample, resolved through the
  /// CompressorRegistry ("opt", "greedy", "brute", "prox", ...). Empty
  /// keeps the paper's heuristic: optimal when the forest is a single tree
  /// (subject to `use_optimal_when_single_tree`), greedy otherwise.
  std::string algo;
  /// Required when `algo` names a grouping algorithm (no `produces_cut`
  /// capability, e.g. "prox"): the variable table its synthesized group
  /// representatives are interned into, so `OnlineResult::compressed`
  /// stays serializable. Ignored (may be null) for cut-based algorithms.
  VariableTable* vars = nullptr;
  /// Use OptimalSingleTree when the forest has exactly one tree (only
  /// consulted when `algo` is empty).
  bool use_optimal_when_single_tree = true;
  /// Wall-clock budget for the decision-sample compression, forwarded to
  /// CompressOptions::time_budget_ms. The anytime algorithms return their
  /// best-so-far cut on expiry (OnlineResult::budget_exhausted); 0 = none.
  uint64_t time_budget_ms = 0;
  uint64_t seed = 42;
};

/// Diagnostics + result of the online pipeline.
struct OnlineResult {
  /// The abstraction chosen on the sample, in unified form (cut for the
  /// tree algorithms, variable grouping for prox).
  CompressionResult abstraction;
  /// Mirror of `abstraction.vvs` for cut-based algorithms; empty when a
  /// grouping algorithm ran (a grouping is not a cut).
  ValidVariableSet vvs;
  PolynomialSet compressed;          ///< Full provenance, pre-grouped.
  /// The decision sample itself, retained as the warm state AppendOnline
  /// patches against: `abstraction.dp_state` (when the optimal DP ran) is
  /// fingerprinted to this set's revision, so appends can be re-derived
  /// through the delta log instead of a full re-run.
  PolynomialSet decision_sample;
  size_t sample_size_m = 0;          ///< |P_sample|_M at the last rate.
  size_t estimated_full_size_m = 0;  ///< Extrapolated |P_full|_M.
  size_t actual_full_size_m = 0;     ///< True |P_full|_M (for reporting).
  size_t adapted_bound = 0;          ///< Bound used on the sample.
  bool met_bound = false;            ///< |compressed|_M ≤ user bound.
  /// Mirror of `abstraction.budget_exhausted`: the sample compression hit
  /// OnlineOptions::time_budget_ms and returned its best-so-far cut.
  bool budget_exhausted = false;
};

/// A provenance query, re-runnable on any (sub)database.
using ProvenanceQuery = std::function<PolynomialSet(const Database&)>;

/// Runs the online pipeline. `bound_full` is the user's bound on the FULL
/// provenance size. Returns kInvalidArgument for empty rates, and
/// kInfeasible when even the sample admits no adequate abstraction.
StatusOr<OnlineResult> CompressOnline(const Database& db,
                                      const ProvenanceQuery& query,
                                      const AbstractionForest& forest,
                                      size_t bound_full,
                                      const OnlineOptions& options = {});

/// How AppendOnline re-derived the cut after an append.
struct OnlineAppendInfo {
  /// The delta-aware OptimalRecompress answered; the full DP was skipped.
  bool patched = false;
  /// Why patching was declined when it was (kNone while `patched`); the
  /// cut was then re-derived by a full algorithm run.
  RecompressFallback fallback = RecompressFallback::kNone;
};

/// Incremental continuation of the online pipeline under ingestion: folds
/// newly-arrived provenance polynomials (same variable space as the
/// original query's output) into a prior CompressOnline result without
/// re-running the pipeline. The new polynomials are appended to the
/// retained decision sample and the cut is re-derived through the
/// delta-aware OptimalRecompress — a full algorithm re-run happens only
/// when patching is declined (no retained DP state, delta log truncated,
/// append crossing the chosen cut, ...; see OnlineAppendInfo::fallback).
/// The new annotations are then grouped through the cut in force and
/// appended to `result->compressed`; rows emitted earlier keep the
/// grouping under which they were produced (the online model never
/// materializes the exact originals to regroup).
///
/// `options` should be the ones the original CompressOnline ran with (they
/// select the fallback algorithm and seed). The pipeline's adapted bound
/// stays in force so the retained DP tables remain reusable; `met_bound`
/// is re-judged against `bound_full`. Grouping abstractions (e.g. "prox")
/// cannot be patched and are rejected with kInvalidArgument — re-run
/// CompressOnline instead.
Status AppendOnline(const AbstractionForest& forest,
                    const PolynomialSet& added, size_t bound_full,
                    OnlineResult* result, const OnlineOptions& options = {},
                    OnlineAppendInfo* info = nullptr);

}  // namespace provabs

#endif  // PROVABS_ONLINE_ONLINE_COMPRESSOR_H_
