#include "online/online_compressor.h"

#include <algorithm>

#include "algo/greedy_multi_tree.h"
#include "online/size_estimator.h"

namespace provabs {

StatusOr<OnlineResult> CompressOnline(const Database& db,
                                      const ProvenanceQuery& query,
                                      const AbstractionForest& forest,
                                      size_t bound_full,
                                      const OnlineOptions& options) {
  if (options.sample_rates.empty()) {
    return Status::InvalidArgument("at least one sample rate is required");
  }
  if (bound_full == 0) {
    return Status::InvalidArgument("bound must be at least 1");
  }
  std::vector<double> rates = options.sample_rates;
  std::sort(rates.begin(), rates.end());
  if (rates.front() <= 0.0 || rates.back() > 1.0) {
    return Status::InvalidArgument("sample rates must lie in (0, 1]");
  }

  // 1+2. Nested samples: run the query at each rate, recording sizes. The
  // largest sample doubles as the decision sample.
  Rng rng(options.seed);
  std::vector<SizeObservation> observations;
  PolynomialSet decision_sample;
  for (double rate : rates) {
    SampleSpec spec;
    spec.rate = rate;
    spec.sampled_tables = options.sampled_tables;
    Rng sample_rng(options.seed ^ static_cast<uint64_t>(rate * 1e6));
    Database sampled = SampleDatabase(db, spec, sample_rng);
    PolynomialSet polys = query(sampled);
    observations.push_back({rate, polys.SizeM()});
    if (rate == rates.back()) decision_sample = std::move(polys);
  }
  (void)rng;

  OnlineResult result;
  result.sample_size_m = decision_sample.SizeM();
  if (result.sample_size_m == 0) {
    return Status::FailedPrecondition(
        "the sample produced empty provenance; raise the sample rate");
  }

  // 3. Size extrapolation and bound adaptation.
  auto estimate = EstimateFullSize(observations);
  if (!estimate.ok()) return estimate.status();
  result.estimated_full_size_m = *estimate;
  result.adapted_bound = AdaptBoundToSample(bound_full, result.sample_size_m,
                                            result.estimated_full_size_m);

  // 4. Choose the VVS on the decision sample.
  Status compat = forest.CheckCompatible(decision_sample);
  if (!compat.ok()) return compat;
  if (options.use_optimal_when_single_tree && forest.tree_count() == 1) {
    auto opt = OptimalSingleTree(decision_sample, forest, 0,
                                 result.adapted_bound);
    if (opt.ok()) {
      result.vvs = opt->vvs;
    } else if (opt.status().code() == StatusCode::kInfeasible) {
      // Fall back to maximal compression on the sample.
      result.vvs = ValidVariableSet::AllRoots(forest);
    } else {
      return opt.status();
    }
  } else {
    auto greedy = GreedyMultiTree(decision_sample, forest,
                                  result.adapted_bound);
    if (!greedy.ok()) return greedy.status();
    result.vvs = greedy->vvs;
  }

  // 5. Full evaluation over the pre-grouped variable space. Running the
  // query and substituting per-annotation is equivalent to annotating the
  // inputs with meta-variables, and never stores two monomials that the
  // abstraction identifies.
  PolynomialSet full = query(db);
  result.actual_full_size_m = full.SizeM();
  result.compressed = result.vvs.Apply(forest, full);
  result.met_bound = result.compressed.SizeM() <= bound_full;
  return result;
}

}  // namespace provabs
