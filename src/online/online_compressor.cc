#include "online/online_compressor.h"

#include <algorithm>
#include <utility>

#include "algo/compressor.h"
#include "online/size_estimator.h"

namespace provabs {

StatusOr<OnlineResult> CompressOnline(const Database& db,
                                      const ProvenanceQuery& query,
                                      const AbstractionForest& forest,
                                      size_t bound_full,
                                      const OnlineOptions& options) {
  if (options.sample_rates.empty()) {
    return Status::InvalidArgument("at least one sample rate is required");
  }
  if (bound_full == 0) {
    return Status::InvalidArgument("bound must be at least 1");
  }
  std::vector<double> rates = options.sample_rates;
  std::sort(rates.begin(), rates.end());
  if (rates.front() <= 0.0 || rates.back() > 1.0) {
    return Status::InvalidArgument("sample rates must lie in (0, 1]");
  }

  // 1+2. Nested samples: run the query at each rate, recording sizes. The
  // largest sample doubles as the decision sample.
  Rng rng(options.seed);
  std::vector<SizeObservation> observations;
  PolynomialSet decision_sample;
  for (double rate : rates) {
    SampleSpec spec;
    spec.rate = rate;
    spec.sampled_tables = options.sampled_tables;
    Rng sample_rng(options.seed ^ static_cast<uint64_t>(rate * 1e6));
    Database sampled = SampleDatabase(db, spec, sample_rng);
    PolynomialSet polys = query(sampled);
    observations.push_back({rate, polys.SizeM()});
    if (rate == rates.back()) decision_sample = std::move(polys);
  }
  (void)rng;

  OnlineResult result;
  result.sample_size_m = decision_sample.SizeM();
  if (result.sample_size_m == 0) {
    return Status::FailedPrecondition(
        "the sample produced empty provenance; raise the sample rate");
  }

  // 3. Size extrapolation and bound adaptation.
  auto estimate = EstimateFullSize(observations);
  if (!estimate.ok()) return estimate.status();
  result.estimated_full_size_m = *estimate;
  result.adapted_bound = AdaptBoundToSample(bound_full, result.sample_size_m,
                                            result.estimated_full_size_m);

  // 4. Choose the abstraction on the decision sample. An explicit
  // options.algo routes through the registry; otherwise the paper's
  // heuristic picks the optimal DP for single-tree forests and greedy for
  // the rest. Either way an infeasible sample falls back to maximal
  // compression (all roots) rather than failing the pipeline.
  Status compat = forest.CheckCompatible(decision_sample);
  if (!compat.ok()) return compat;
  std::string algo_name = options.algo;
  if (algo_name.empty()) {
    algo_name =
        options.use_optimal_when_single_tree && forest.tree_count() == 1
            ? "opt"
            : "greedy";
  }
  auto compressor = CompressorRegistry::Default().Resolve(algo_name);
  if (!compressor.ok()) return compressor.status();
  if (!(*compressor)->info().produces_cut && options.vars == nullptr) {
    // Grouping representatives must be internable, or `compressed` would
    // hold ids no table can name (unserializable); checked before any
    // algorithm run so the misconfiguration fails fast.
    return Status::InvalidArgument(
        "algorithm '" + algo_name +
        "' produces a variable grouping; set OnlineOptions::vars so its "
        "group representatives can be interned");
  }
  CompressOptions copts;
  copts.bound = result.adapted_bound;
  copts.seed = options.seed;
  copts.time_budget_ms = options.time_budget_ms;
  auto chosen = (*compressor)->Compress(decision_sample, forest, copts);
  if (chosen.ok()) {
    result.abstraction = std::move(*chosen);
  } else if (chosen.status().code() == StatusCode::kInfeasible) {
    result.abstraction.vvs = ValidVariableSet::AllRoots(forest);
  } else {
    return chosen.status();
  }
  if (result.abstraction.grouping) {
    if (options.vars == nullptr) {
      // Only reachable when a compressor's produces_cut metadata lied.
      return Status::Internal("algorithm '" + algo_name +
                              "' returned a grouping despite advertising "
                              "produces_cut");
    }
    result.abstraction.InternGrouping(*options.vars);
  } else {
    result.vvs = result.abstraction.vvs;
  }

  // 5. Full evaluation over the pre-grouped variable space. Running the
  // query and substituting per-annotation is equivalent to annotating the
  // inputs with meta-variables, and never stores two monomials that the
  // abstraction identifies.
  PolynomialSet full = query(db);
  result.actual_full_size_m = full.SizeM();
  result.compressed = result.abstraction.Apply(forest, full);
  result.met_bound = result.compressed.SizeM() <= bound_full;
  result.budget_exhausted = result.abstraction.budget_exhausted;
  // Retained last: the abstraction's dp_state is fingerprinted to this
  // set's revision, which is what lets AppendOnline patch instead of
  // re-running the DP.
  result.decision_sample = std::move(decision_sample);
  return result;
}

Status AppendOnline(const AbstractionForest& forest,
                    const PolynomialSet& added, size_t bound_full,
                    OnlineResult* result, const OnlineOptions& options,
                    OnlineAppendInfo* info) {
  if (info) *info = OnlineAppendInfo{};
  if (result == nullptr) {
    return Status::InvalidArgument("AppendOnline needs a prior result");
  }
  if (result->abstraction.grouping) {
    return Status::InvalidArgument(
        "grouping abstractions cannot be patched incrementally; re-run "
        "CompressOnline");
  }
  if (added.count() == 0) return Status::OK();
  Status compat = forest.CheckCompatible(added);
  if (!compat.ok()) return compat;

  const uint64_t from_revision = result->decision_sample.revision();
  for (const Polynomial& p : added.polynomials()) {
    result->decision_sample.Add(p);
  }
  result->sample_size_m = result->decision_sample.SizeM();
  // Every appended polynomial enters both the sample and the (conceptual)
  // full provenance, so both sides grow by the same amount; the original
  // adapted bound stays in force (a drifting bound would invalidate the
  // retained DP tables on every append).
  result->estimated_full_size_m += added.SizeM();
  result->actual_full_size_m += added.SizeM();

  PolynomialSetDelta delta =
      result->decision_sample.DeltaSince(from_revision);
  RecompressFallback why = RecompressFallback::kNone;
  auto patched =
      OptimalRecompress(result->decision_sample, forest, result->abstraction,
                        delta, result->adapted_bound, &why);
  CompressionResult next;
  if (patched.ok()) {
    next = std::move(*patched);
    if (info) info->patched = true;
  } else if (patched.status().code() == StatusCode::kInfeasible) {
    // Authoritative: the full DP would agree. Same fallback as the
    // pipeline's step 4 — maximal compression rather than failure.
    next.vvs = ValidVariableSet::AllRoots(forest);
  } else if (patched.status().code() == StatusCode::kFailedPrecondition) {
    if (info) info->fallback = why;
    std::string algo_name = options.algo;
    if (algo_name.empty()) {
      algo_name =
          options.use_optimal_when_single_tree && forest.tree_count() == 1
              ? "opt"
              : "greedy";
    }
    auto compressor = CompressorRegistry::Default().Resolve(algo_name);
    if (!compressor.ok()) return compressor.status();
    CompressOptions copts;
    copts.bound = result->adapted_bound;
    copts.seed = options.seed;
    copts.time_budget_ms = options.time_budget_ms;
    auto full =
        (*compressor)->Compress(result->decision_sample, forest, copts);
    if (full.ok()) {
      next = std::move(*full);
    } else if (full.status().code() == StatusCode::kInfeasible) {
      next.vvs = ValidVariableSet::AllRoots(forest);
    } else {
      return full.status();
    }
  } else {
    return patched.status();
  }
  result->abstraction = std::move(next);
  result->vvs = result->abstraction.vvs;
  result->budget_exhausted = result->abstraction.budget_exhausted;

  // Step 5, streaming: group only the NEW annotations through the cut now
  // in force and append them to the running compressed output.
  PolynomialSet grouped = result->abstraction.Apply(forest, added);
  for (const Polynomial& p : grouped.polynomials()) {
    result->compressed.Add(p);
  }
  result->met_bound = result->compressed.SizeM() <= bound_full;
  return Status::OK();
}

}  // namespace provabs
