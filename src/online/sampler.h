#ifndef PROVABS_ONLINE_SAMPLER_H_
#define PROVABS_ONLINE_SAMPLER_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "common/random.h"
#include "engine/table.h"

namespace provabs {

/// Database sampling for the online-compression pipeline sketched in §6 of
/// the paper. Two strategies are provided:
///
///  * uniform  — every table is Bernoulli-sampled at the given rate. As the
///    paper notes, this "may not lead to a representative sample of the
///    output or its provenance" for join-heavy queries (a sampled fact row
///    loses its dimension rows with high probability).
///
///  * group-aware — the paper's heuristic for GROUP BY queries: sample only
///    the relations that carry the grouping/fact rows, leaving dimension
///    relations intact, so each retained fact row still joins and the
///    output polynomials form a genuine subsample of the full ones.
struct SampleSpec {
  /// Bernoulli retention probability for sampled tables.
  double rate = 0.1;
  /// Tables to sample; all other tables are copied intact. Leave empty to
  /// sample every table (the uniform strategy).
  std::vector<std::string> sampled_tables;
};

/// Returns a database where each table listed in `spec.sampled_tables`
/// (or every table if the list is empty) keeps each row independently with
/// probability `spec.rate`. Deterministic given `rng`.
Database SampleDatabase(const Database& db, const SampleSpec& spec,
                        Rng& rng);

}  // namespace provabs

#endif  // PROVABS_ONLINE_SAMPLER_H_
