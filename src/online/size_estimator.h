#ifndef PROVABS_ONLINE_SIZE_ESTIMATOR_H_
#define PROVABS_ONLINE_SIZE_ESTIMATOR_H_

#include <cstddef>
#include <vector>

#include "common/statusor.h"

namespace provabs {

/// One observation for the extrapolation: at sampling rate `rate`, the
/// sample's provenance contained `size_m` monomials.
struct SizeObservation {
  double rate = 0.0;    ///< In (0, 1].
  size_t size_m = 0;
};

/// Estimates the full (rate = 1) provenance size from samples of increasing
/// size — the extrapolation component of the §6 online pipeline (which the
/// paper delegates to classical extrapolation methods [14]). We fit a
/// power law  size ≈ c · rate^α  by least squares in log-log space, which
/// covers the two regimes that arise in practice:
///   α ≈ 1  — provenance grows linearly in the fact rows (e.g. Q10,
///            telephony: monomials are per-row);
///   α < 1  — saturation, as when a polynomial's monomials are capped by
///            the parameter grid (e.g. Q1 at scale: new rows mostly merge
///            into existing monomials).
/// Requires at least two observations at distinct rates with positive
/// sizes; returns kInvalidArgument otherwise.
StatusOr<size_t> EstimateFullSize(
    const std::vector<SizeObservation>& observations);

/// The bound-adaptation heuristic of §6: scales the user's full-data bound
/// `bound_full` to the sample by the ratio between the sample provenance
/// size and the estimated full size (clamped to at least 1).
size_t AdaptBoundToSample(size_t bound_full, size_t sample_size_m,
                          size_t estimated_full_size_m);

}  // namespace provabs

#endif  // PROVABS_ONLINE_SIZE_ESTIMATOR_H_
