#include "online/sampler.h"

#include <algorithm>

namespace provabs {

Database SampleDatabase(const Database& db, const SampleSpec& spec,
                        Rng& rng) {
  std::unordered_set<std::string> sampled(spec.sampled_tables.begin(),
                                          spec.sampled_tables.end());
  const bool sample_all = sampled.empty();

  Database out;
  // Sort names so the sampling decisions are deterministic regardless of
  // hash-map iteration order.
  std::vector<std::string> names = db.Names();
  std::sort(names.begin(), names.end());
  for (const std::string& name : names) {
    const Table& src = db.Get(name);
    if (!sample_all && sampled.count(name) == 0) {
      out.Put(src);  // Dimension table: copied intact.
      continue;
    }
    Table dst(src.name(), src.schema());
    for (const Row& row : src.rows()) {
      if (rng.Bernoulli(spec.rate)) dst.Append(row);
    }
    out.Put(std::move(dst));
  }
  return out;
}

}  // namespace provabs
