#include "online/size_estimator.h"

#include <cmath>

namespace provabs {

StatusOr<size_t> EstimateFullSize(
    const std::vector<SizeObservation>& observations) {
  // Least-squares line through (log rate, log size).
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  size_t n = 0;
  double first_rate = -1.0;
  bool distinct_rates = false;
  for (const SizeObservation& obs : observations) {
    if (obs.rate <= 0.0 || obs.rate > 1.0 || obs.size_m == 0) continue;
    if (first_rate < 0) {
      first_rate = obs.rate;
    } else if (obs.rate != first_rate) {
      distinct_rates = true;
    }
    double x = std::log(obs.rate);
    double y = std::log(static_cast<double>(obs.size_m));
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    ++n;
  }
  if (n < 2 || !distinct_rates) {
    return Status::InvalidArgument(
        "size extrapolation needs two samples at distinct positive rates");
  }
  double denom = static_cast<double>(n) * sxx - sx * sx;
  double alpha = (static_cast<double>(n) * sxy - sx * sy) / denom;
  double log_c = (sy - alpha * sx) / static_cast<double>(n);
  // Full data is rate = 1, so log(size) = log_c + alpha·log(1) = log_c.
  double estimate = std::exp(log_c);
  if (!(estimate >= 1.0)) estimate = 1.0;
  return static_cast<size_t>(std::llround(estimate));
}

size_t AdaptBoundToSample(size_t bound_full, size_t sample_size_m,
                          size_t estimated_full_size_m) {
  if (estimated_full_size_m == 0) return bound_full;
  double ratio = static_cast<double>(sample_size_m) /
                 static_cast<double>(estimated_full_size_m);
  double adapted = static_cast<double>(bound_full) * ratio;
  if (adapted < 1.0) return 1;
  return static_cast<size_t>(adapted);
}

}  // namespace provabs
