#include "jit/x86_encoder.h"

#include "common/macros.h"

namespace provabs {
namespace jit {

namespace {

constexpr uint8_t ModRm(uint8_t mod, uint8_t reg, uint8_t rm) {
  return static_cast<uint8_t>((mod << 6) | ((reg & 7) << 3) | (rm & 7));
}

}  // namespace

void X86Encoder::MemOperand(uint8_t reg, Gp64 base, int32_t disp) {
  const uint8_t rm = static_cast<uint8_t>(base);
  // rsp as a base needs a SIB byte; the evaluation JIT never uses it, so
  // the encoder refuses rather than growing an encoding path no test pins.
  PROVABS_CHECK(base != Gp64::rsp);
  // mod=00 rm=101 is RIP-relative, not [rbp]; rbp must carry a disp8.
  if (disp == 0 && base != Gp64::rbp) {
    Put(ModRm(0, reg, rm));
    return;
  }
  if (disp >= -128 && disp <= 127) {
    Put(ModRm(1, reg, rm));
    Put(static_cast<uint8_t>(disp));
    return;
  }
  Put(ModRm(2, reg, rm));
  const uint32_t d = static_cast<uint32_t>(disp);
  Put(static_cast<uint8_t>(d));
  Put(static_cast<uint8_t>(d >> 8));
  Put(static_cast<uint8_t>(d >> 16));
  Put(static_cast<uint8_t>(d >> 24));
}

void X86Encoder::XorpdZero(Xmm dst) {
  // 66 0F 57 /r, reg = rm = dst.
  const uint8_t r = static_cast<uint8_t>(dst);
  Put(0x66);
  Put(0x0F);
  Put(0x57);
  Put(ModRm(3, r, r));
}

void X86Encoder::MovsdLoad(Xmm dst, Gp64 base, int32_t disp) {
  // F2 0F 10 /r.
  Put(0xF2);
  Put(0x0F);
  Put(0x10);
  MemOperand(static_cast<uint8_t>(dst), base, disp);
}

void X86Encoder::MovsdStore(Gp64 base, int32_t disp, Xmm src) {
  // F2 0F 11 /r.
  Put(0xF2);
  Put(0x0F);
  Put(0x11);
  MemOperand(static_cast<uint8_t>(src), base, disp);
}

void X86Encoder::Mulsd(Xmm dst, Xmm src) {
  // F2 0F 59 /r.
  Put(0xF2);
  Put(0x0F);
  Put(0x59);
  Put(ModRm(3, static_cast<uint8_t>(dst), static_cast<uint8_t>(src)));
}

void X86Encoder::Addsd(Xmm dst, Xmm src) {
  // F2 0F 58 /r.
  Put(0xF2);
  Put(0x0F);
  Put(0x58);
  Put(ModRm(3, static_cast<uint8_t>(dst), static_cast<uint8_t>(src)));
}

void X86Encoder::MovRaxImm64(uint64_t imm) {
  // REX.W B8+rd io, rd = rax.
  Put(0x48);
  Put(0xB8);
  for (int i = 0; i < 8; ++i) Put(static_cast<uint8_t>(imm >> (8 * i)));
}

void X86Encoder::MovqFromRax(Xmm dst) {
  // 66 REX.W 0F 6E /r, rm = rax.
  Put(0x66);
  Put(0x48);
  Put(0x0F);
  Put(0x6E);
  Put(ModRm(3, static_cast<uint8_t>(dst), 0));
}

void X86Encoder::Ret() { Put(0xC3); }

}  // namespace jit
}  // namespace provabs
