#include "jit/exec_arena.h"

#include <cstring>

#if PROVABS_JIT_SUPPORTED
#include <sys/mman.h>
#include <unistd.h>
#endif

namespace provabs {
namespace jit {

#if PROVABS_JIT_SUPPORTED

namespace {

size_t PageSize() {
  static const size_t page = static_cast<size_t>(sysconf(_SC_PAGESIZE));
  return page;
}

size_t RoundUpToPages(size_t bytes) {
  const size_t page = PageSize();
  return (bytes + page - 1) / page * page;
}

}  // namespace

ExecArena::~ExecArena() {
  if (base_ != nullptr) munmap(base_, mapped_bytes_);
}

StatusOr<std::unique_ptr<ExecArena>> ExecArena::Create(const uint8_t* code,
                                                       size_t size) {
  if (code == nullptr || size == 0) {
    return Status::InvalidArgument("empty code blob");
  }
  const size_t mapped = RoundUpToPages(size);
  void* mem = mmap(nullptr, mapped, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (mem == MAP_FAILED) {
    return Status::Unavailable("mmap of " + std::to_string(mapped) +
                               " executable-arena bytes failed");
  }
  std::memcpy(mem, code, size);
  // W^X transition: the region is never writable and executable at once.
  if (mprotect(mem, mapped, PROT_READ | PROT_EXEC) != 0) {
    munmap(mem, mapped);
    return Status::Unavailable(
        "mprotect(PROT_READ|PROT_EXEC) refused — W^X-restricted or noexec "
        "environment");
  }
  return std::unique_ptr<ExecArena>(
      new ExecArena(static_cast<uint8_t*>(mem), size, mapped));
}

namespace {

bool ExecMemoryProbe() {
  // A real end-to-end probe: map, flip, execute a bare `ret`. Hardened
  // configurations can refuse at mmap, at the mprotect flip (SELinux
  // execmem, PaX MPROTECT), or not at all — executing a one-byte function
  // is the only answer that covers the first two without a signal handler,
  // and a `ret` is safe anywhere code can run at all.
  static const uint8_t kRet[] = {0xC3};
  auto arena = ExecArena::Create(kRet, sizeof(kRet));
  if (!arena.ok()) return false;
  using VoidFn = void (*)();
  reinterpret_cast<VoidFn>(
      reinterpret_cast<uintptr_t>((*arena)->base()))();
  return true;
}

}  // namespace

bool ExecArena::ExecMemoryAvailable() {
  static const bool available = ExecMemoryProbe();
  return available;
}

#else  // !PROVABS_JIT_SUPPORTED

ExecArena::~ExecArena() = default;

StatusOr<std::unique_ptr<ExecArena>> ExecArena::Create(const uint8_t*,
                                                       size_t) {
  return Status::Unavailable(
      "JIT is not supported on this platform (requires x86-64 + POSIX "
      "mmap/mprotect)");
}

bool ExecArena::ExecMemoryAvailable() { return false; }

#endif  // PROVABS_JIT_SUPPORTED

}  // namespace jit
}  // namespace provabs
