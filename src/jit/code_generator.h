#ifndef PROVABS_JIT_CODE_GENERATOR_H_
#define PROVABS_JIT_CODE_GENERATOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/statusor.h"
#include "core/compiled_polynomial_set.h"

namespace provabs {
namespace jit {

/// Native code emitted for one CompiledPolynomialSet: a single contiguous
/// blob containing one straight-line function per polynomial, entered at
/// `entry_offsets[p]`. Each function has the SysV signature
///
///   double fn(const double* slots);   // rdi = DenseValuation::data()
///
/// and is the compiled form's CSR walk fully unrolled: the monomial and
/// factor loops are gone, coefficients are embedded in the instruction
/// stream as imm64 constants, and every dense-slot read is a movsd with a
/// fixed [rdi + 8*slot] displacement. The emitted operation sequence is
/// exactly the canonical one documented on Valuation::Evaluate —
/// term = coefficient; term *= value (exponent times); total += term — as
/// scalar SSE2 mulsd/addsd that hardware cannot contract into FMA, so the
/// returned bits equal the interpreter's on every input.
struct GeneratedCode {
  std::vector<uint8_t> code;
  /// entry_offsets[p] = byte offset of polynomial p's function in `code`.
  std::vector<size_t> entry_offsets;
  /// Byte offset of the full-set function
  ///
  ///   void fn(const double* slots, double* out);  // rdi, rsi
  ///
  /// — every polynomial's body concatenated into one straight line, each
  /// result stored to out[p] instead of returned. A full-range batch is
  /// then ONE call per scenario rather than one per polynomial, which is
  /// what makes the jit win on sets of many tiny polynomials where
  /// per-call overhead would otherwise swamp the straight-line gain; the
  /// per-polynomial entries above serve partial [begin, end) ranges.
  size_t range_entry = 0;
};

/// Emits GeneratedCode for every polynomial of `compiled`. Fails with
/// kOutOfRange when the blob would exceed `max_code_bytes` (fully-unrolled
/// code is linear in the set's factor count, but a pathological set could
/// out-size the instruction cache's usefulness and the arena budget — the
/// backend treats the refusal as one more counted fallback reason) or when
/// a slot offset cannot be addressed with a disp32 (slot > 2^28 — beyond
/// any set the 32-bit CSR arrays can describe usefully).
StatusOr<GeneratedCode> GeneratePolynomialSetCode(
    const CompiledPolynomialSet& compiled, size_t max_code_bytes);

}  // namespace jit
}  // namespace provabs

#endif  // PROVABS_JIT_CODE_GENERATOR_H_
