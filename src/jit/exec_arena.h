#ifndef PROVABS_JIT_EXEC_ARENA_H_
#define PROVABS_JIT_EXEC_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>

#include "common/statusor.h"

/// True when this build can emit and execute native code: x86-64 (the only
/// ISA jit/x86_encoder.h targets) on a POSIX system with mmap/mprotect.
/// Elsewhere the arena compiles to a stub whose Create always fails, and
/// the jit backend degrades to the compiled kernel — same behaviour as a
/// noexec mount at runtime, decided at compile time.
#if defined(__x86_64__) && (defined(__linux__) || defined(__APPLE__))
#define PROVABS_JIT_SUPPORTED 1
#else
#define PROVABS_JIT_SUPPORTED 0
#endif

namespace provabs {
namespace jit {

/// One page-granular executable mapping holding a generated code blob,
/// with a strict W^X lifecycle: the region is mapped READ|WRITE, the code
/// is copied in, and the mapping is flipped to READ|EXEC before any caller
/// can obtain the base pointer — the memory is never writable and
/// executable at the same time. Hardened kernels (W^X enforcement, noexec
/// tmpfs for anonymous mappings, seccomp'd mprotect) surface as a
/// recoverable Status from Create, which the jit backend turns into a
/// counted fallback to the compiled kernel, never a crash.
///
/// Instances are immutable after Create and safe to share across threads;
/// the destructor unmaps the region, so generated code must not outlive
/// its arena (the code cache keys module lifetime on exactly this).
class ExecArena {
 public:
  ExecArena(const ExecArena&) = delete;
  ExecArena& operator=(const ExecArena&) = delete;
  ~ExecArena();

  /// Maps ceil(size / page) pages RW, copies `code[0..size)`, flips the
  /// mapping RX. Fails with kInvalidArgument on an empty blob and
  /// kUnavailable when the platform lacks JIT support or mmap/mprotect
  /// refuse (the caller's cue to fall back, not abort).
  static StatusOr<std::unique_ptr<ExecArena>> Create(const uint8_t* code,
                                                     size_t size);

  /// Start of the executable region (RX by construction).
  const uint8_t* base() const { return base_; }

  /// Bytes of generated code copied in.
  size_t code_bytes() const { return code_bytes_; }

  /// Bytes actually mapped — code_bytes() rounded up to whole pages; the
  /// figure charged against the code cache's byte budget (resident memory
  /// is consumed a page at a time regardless of blob size).
  size_t mapped_bytes() const { return mapped_bytes_; }

  /// One-shot probe, cached for the process lifetime: can we map a page,
  /// flip it RX, and execute from it? False under noexec/hardened
  /// configurations (and on non-x86-64 builds), in which case the jit
  /// backend never attempts emission.
  static bool ExecMemoryAvailable();

 private:
  ExecArena(uint8_t* base, size_t code_bytes, size_t mapped_bytes)
      : base_(base), code_bytes_(code_bytes), mapped_bytes_(mapped_bytes) {}

  uint8_t* base_ = nullptr;
  size_t code_bytes_ = 0;
  size_t mapped_bytes_ = 0;
};

}  // namespace jit
}  // namespace provabs

#endif  // PROVABS_JIT_EXEC_ARENA_H_
