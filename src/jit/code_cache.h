#ifndef PROVABS_JIT_CODE_CACHE_H_
#define PROVABS_JIT_CODE_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/statusor.h"
#include "core/compiled_polynomial_set.h"
#include "jit/exec_arena.h"

namespace provabs {
namespace jit {

/// Executable code emitted for one compiled snapshot: the W^X arena plus
/// the per-polynomial entry offsets. Immutable and thread-safe after
/// construction; callers hold it by shared_ptr so cache eviction can never
/// unmap code an in-flight batch is executing.
class JitModule {
 public:
  JitModule(uint64_t fingerprint, std::unique_ptr<ExecArena> arena,
            std::vector<size_t> entry_offsets, size_t range_entry)
      : fingerprint_(fingerprint),
        arena_(std::move(arena)),
        entry_offsets_(std::move(entry_offsets)),
        range_entry_(range_entry) {}

  /// Fingerprint of the CompiledPolynomialSet this code was emitted from —
  /// the same identity DenseValuation carries, so code validity and
  /// valuation validity are invalidated by exactly the same event (an
  /// Add/recompile produces a new fingerprint; stale code simply never
  /// matches again and ages out of the LRU).
  uint64_t fingerprint() const { return fingerprint_; }

  size_t poly_count() const { return entry_offsets_.size(); }

  /// Bytes of emitted instructions.
  size_t code_bytes() const { return arena_->code_bytes(); }

  /// Page-rounded resident footprint — what the cache budget charges.
  size_t mapped_bytes() const { return arena_->mapped_bytes(); }

  /// Calls polynomial p's generated function on a dense slot array. The
  /// caller is responsible for fingerprint validation (the backend's
  /// EvaluateBatch wrapper already performed it for the whole batch).
  double Eval(size_t p, const double* slots) const {
    using EvalFn = double (*)(const double*);
    return reinterpret_cast<EvalFn>(reinterpret_cast<uintptr_t>(
        arena_->base() + entry_offsets_[p]))(slots);
  }

  /// Calls the full-set range function: `out[p] = value of polynomial p`
  /// for every p, one native call for the whole set. Same operation order
  /// as poly_count() Eval() calls, minus per-call overhead — the fast path
  /// for full-range batches (`out` must hold poly_count() doubles).
  void EvalAll(const double* slots, double* out) const {
    using RangeFn = void (*)(const double*, double*);
    reinterpret_cast<RangeFn>(
        reinterpret_cast<uintptr_t>(arena_->base() + range_entry_))(slots,
                                                                    out);
  }

 private:
  uint64_t fingerprint_;
  std::unique_ptr<ExecArena> arena_;
  std::vector<size_t> entry_offsets_;
  size_t range_entry_;
};

/// Fingerprint-keyed LRU cache of emitted modules with a byte budget over
/// their page-rounded mapped sizes — the ArtifactStore accounting idiom
/// applied to executable memory. Emission is one-time per compiled
/// snapshot; every later batch against the same snapshot is a cache hit.
/// A mutated-and-recompiled set arrives with a fresh fingerprint, misses,
/// and gets fresh code, while the stale entry ages out of the LRU (or is
/// dropped eagerly via Invalidate) — the exact invalidation story
/// DenseValuations have, enforced by the same identity.
///
/// Thread-safe. Emission runs under the cache lock: racing first-callers
/// for one snapshot would otherwise both pay mmap + emission and one
/// mapping would be thrown away; serializing them costs the second caller
/// a wait shorter than its own redundant emission.
class JitCodeCache {
 public:
  /// Default per-set emitted-code cap (see GeneratePolynomialSetCode).
  static constexpr size_t kDefaultMaxCodeBytes = size_t{8} << 20;  // 8 MiB

  /// Default budget for Default(): comfortably holds every workload's
  /// code (~25 bytes per factor) while bounding a server that churns
  /// through thousands of short-lived artifacts.
  static constexpr size_t kDefaultByteBudget = size_t{32} << 20;  // 32 MiB

  explicit JitCodeCache(size_t byte_budget,
                        size_t max_code_bytes = kDefaultMaxCodeBytes);

  JitCodeCache(const JitCodeCache&) = delete;
  JitCodeCache& operator=(const JitCodeCache&) = delete;

  /// The process-wide cache the registered "jit" backend uses.
  static JitCodeCache& Default();

  /// Returns the module for `compiled`, emitting and mapping it on first
  /// use. Failure (exec memory unavailable, per-set code cap, disp32
  /// overflow) is returned as a Status for the backend to count and fall
  /// back on; nothing is cached for a failed emission.
  StatusOr<std::shared_ptr<const JitModule>> GetOrEmit(
      const CompiledPolynomialSet& compiled);

  /// Eagerly drops the entry for `fingerprint`, releasing its budget
  /// charge. Returns true when an entry was resident. (Recompiles do not
  /// need this — a new fingerprint invalidates by construction — but
  /// embedders tearing down a large set can return its pages early.)
  bool Invalidate(uint64_t fingerprint);

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;        ///< Emissions attempted (miss then emit).
    uint64_t emit_failures = 0;
    uint64_t evictions = 0;     ///< LRU evictions (budget pressure).
    uint64_t invalidations = 0; ///< Explicit Invalidate() drops.
    uint64_t resident_modules = 0;
    uint64_t resident_bytes = 0;  ///< Sum of mapped (page-rounded) bytes.
    uint64_t byte_budget = 0;
  };
  Stats stats() const;

 private:
  struct Entry {
    std::shared_ptr<const JitModule> module;
    std::list<uint64_t>::iterator lru_it;
  };

  /// Drops LRU entries until within budget; never drops the most recently
  /// used entry, so one oversized set still gets cached code. Requires
  /// mutex_.
  void EvictToBudget();

  const size_t byte_budget_;
  const size_t max_code_bytes_;
  mutable std::mutex mutex_;
  std::list<uint64_t> lru_;  // front = most recently used fingerprint
  std::unordered_map<uint64_t, Entry> entries_;
  size_t used_bytes_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t emit_failures_ = 0;
  uint64_t evictions_ = 0;
  uint64_t invalidations_ = 0;
};

}  // namespace jit
}  // namespace provabs

#endif  // PROVABS_JIT_CODE_CACHE_H_
