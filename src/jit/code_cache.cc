#include "jit/code_cache.h"

#include <utility>

#include "jit/code_generator.h"

namespace provabs {
namespace jit {

JitCodeCache::JitCodeCache(size_t byte_budget, size_t max_code_bytes)
    : byte_budget_(byte_budget), max_code_bytes_(max_code_bytes) {}

JitCodeCache& JitCodeCache::Default() {
  static JitCodeCache* cache = new JitCodeCache(kDefaultByteBudget);
  return *cache;
}

StatusOr<std::shared_ptr<const JitModule>> JitCodeCache::GetOrEmit(
    const CompiledPolynomialSet& compiled) {
  const uint64_t fingerprint = compiled.fingerprint();
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(fingerprint);
  if (it != entries_.end()) {
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return it->second.module;
  }
  ++misses_;
  StatusOr<GeneratedCode> generated =
      GeneratePolynomialSetCode(compiled, max_code_bytes_);
  if (!generated.ok()) {
    ++emit_failures_;
    return generated.status();
  }
  StatusOr<std::unique_ptr<ExecArena>> arena =
      ExecArena::Create(generated->code.data(), generated->code.size());
  if (!arena.ok()) {
    ++emit_failures_;
    return arena.status();
  }
  auto module = std::make_shared<const JitModule>(
      fingerprint, std::move(*arena), std::move(generated->entry_offsets),
      generated->range_entry);
  used_bytes_ += module->mapped_bytes();
  lru_.push_front(fingerprint);
  entries_.emplace(fingerprint, Entry{module, lru_.begin()});
  EvictToBudget();
  return module;
}

bool JitCodeCache::Invalidate(uint64_t fingerprint) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(fingerprint);
  if (it == entries_.end()) return false;
  used_bytes_ -= it->second.module->mapped_bytes();
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
  ++invalidations_;
  return true;
}

void JitCodeCache::EvictToBudget() {
  while (used_bytes_ > byte_budget_ && entries_.size() > 1) {
    const uint64_t victim = lru_.back();
    auto it = entries_.find(victim);
    used_bytes_ -= it->second.module->mapped_bytes();
    lru_.pop_back();
    entries_.erase(it);
    ++evictions_;
  }
}

JitCodeCache::Stats JitCodeCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.emit_failures = emit_failures_;
  s.evictions = evictions_;
  s.invalidations = invalidations_;
  s.resident_modules = entries_.size();
  s.resident_bytes = used_bytes_;
  s.byte_budget = byte_budget_;
  return s;
}

}  // namespace jit
}  // namespace provabs
