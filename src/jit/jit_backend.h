#ifndef PROVABS_JIT_JIT_BACKEND_H_
#define PROVABS_JIT_JIT_BACKEND_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "core/evaluation_backend.h"
#include "jit/code_cache.h"

namespace provabs {

/// True when the PROVABS_EVAL_FORCE_NOJIT environment variable is set to a
/// non-empty value other than "0" — the deterministic CI knob (mirroring
/// PROVABS_EVAL_FORCE_SCALAR) that makes the registered "jit" backend take
/// its compiled-kernel fallback path on every call and the registry's auto
/// policy route around it. Read per call, so tests can flip it.
bool JitForceDisabled();

/// True when the "jit" backend will actually execute emitted code: the
/// force knob is unset AND the process can map executable memory
/// (jit::ExecArena::ExecMemoryAvailable() — false on noexec/hardened
/// systems and non-x86-64 builds).
bool JitNativeActive();

/// The top evaluation tier: emits one straight-line native function per
/// polynomial of the compiled artifact (jit/code_generator.h), cached by
/// compiled-form fingerprint (jit/code_cache.h), and calls it per
/// (scenario, polynomial) — no interpreter loops, no per-factor offset
/// loads, coefficients embedded in the instruction stream. Registered in
/// EvaluationBackendRegistry::Default() as "jit".
///
/// Degrades gracefully instead of failing: when emission is impossible
/// (forced off, executable memory unavailable, per-set code cap, disp32
/// overflow) the batch runs through the compiled CSR kernel — bitwise
/// identical by the backend contract — and the reason is counted in
/// stats(). Explicitly selecting "jit" therefore always succeeds wherever
/// "compiled" would.
class JitBackend : public EvaluationBackend {
 public:
  enum class Mode {
    kAuto,           ///< Native when JitNativeActive(), else fallback.
    kForceFallback,  ///< Always the compiled-kernel path (tests/CI).
  };

  /// `cache` defaults to jit::JitCodeCache::Default(); tests pass their
  /// own to pin budget/eviction behaviour.
  explicit JitBackend(Mode mode = Mode::kAuto,
                      jit::JitCodeCache* cache = nullptr);

  const EvaluationBackendInfo& info() const override;

  /// False when this instance cannot execute native code (forced fallback
  /// or no executable memory) — the auto policy then routes to the next
  /// tier while explicit selection still works via the fallback path.
  bool Available() const override;

  /// Why batches went native or fell back, cumulative per instance.
  struct Stats {
    uint64_t native_batches = 0;
    uint64_t fallback_forced = 0;      ///< Mode/env force knob.
    uint64_t fallback_no_exec_mem = 0; ///< mmap/mprotect unavailable.
    uint64_t fallback_emit_failed = 0; ///< Code cap / encoding limits.
  };
  Stats stats() const;

 protected:
  void DoEvaluateBatch(const CompiledPolynomialSet& compiled,
                       size_t poly_begin, size_t poly_end,
                       const DenseValuation* const* scenarios,
                       double* const* outs,
                       size_t scenario_count) const override;

 private:
  Mode mode_;
  jit::JitCodeCache* cache_;
  mutable std::atomic<uint64_t> native_batches_{0};
  mutable std::atomic<uint64_t> fallback_forced_{0};
  mutable std::atomic<uint64_t> fallback_no_exec_mem_{0};
  mutable std::atomic<uint64_t> fallback_emit_failed_{0};
};

/// Factory for the registry's built-in registration (keeps
/// core/evaluation_backend.cc ignorant of the concrete type).
std::unique_ptr<EvaluationBackend> MakeJitBackend();

}  // namespace provabs

#endif  // PROVABS_JIT_JIT_BACKEND_H_
