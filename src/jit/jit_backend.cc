#include "jit/jit_backend.h"

#include <cstdlib>

namespace provabs {

bool JitForceDisabled() {
  const char* env = std::getenv("PROVABS_EVAL_FORCE_NOJIT");
  return env != nullptr && env[0] != '\0' &&
         !(env[0] == '0' && env[1] == '\0');
}

bool JitNativeActive() {
  return !JitForceDisabled() && jit::ExecArena::ExecMemoryAvailable();
}

JitBackend::JitBackend(Mode mode, jit::JitCodeCache* cache)
    : mode_(mode),
      cache_(cache != nullptr ? cache : &jit::JitCodeCache::Default()) {}

const EvaluationBackendInfo& JitBackend::info() const {
  static const EvaluationBackendInfo kInfo{
      "jit",
      "per-artifact native code emission (straight-line SSE2, "
      "fingerprint-cached; falls back to the compiled kernel where "
      "executable memory is unavailable)",
      /*vectorized=*/false, /*deterministic=*/true, /*preferred_batch=*/1,
      /*tier=*/3};
  return kInfo;
}

bool JitBackend::Available() const {
  return mode_ == Mode::kAuto && JitNativeActive();
}

void JitBackend::DoEvaluateBatch(const CompiledPolynomialSet& compiled,
                                 size_t poly_begin, size_t poly_end,
                                 const DenseValuation* const* scenarios,
                                 double* const* outs,
                                 size_t scenario_count) const {
  if (mode_ == Mode::kForceFallback || JitForceDisabled()) {
    fallback_forced_.fetch_add(1, std::memory_order_relaxed);
  } else if (!jit::ExecArena::ExecMemoryAvailable()) {
    fallback_no_exec_mem_.fetch_add(1, std::memory_order_relaxed);
  } else {
    StatusOr<std::shared_ptr<const jit::JitModule>> module =
        cache_->GetOrEmit(compiled);
    if (module.ok()) {
      native_batches_.fetch_add(1, std::memory_order_relaxed);
      // A full-range batch takes the single range function (one native
      // call per scenario — the common serving and EvaluateAll shape);
      // partial ranges (parallel chunking) call per-polynomial entries.
      const bool full_range =
          poly_begin == 0 && poly_end == compiled.poly_count();
      for (size_t s = 0; s < scenario_count; ++s) {
        const double* slots = scenarios[s]->data();
        double* out = outs[s];
        if (full_range) {
          (*module)->EvalAll(slots, out);
          continue;
        }
        for (size_t p = poly_begin; p < poly_end; ++p) {
          out[p - poly_begin] = (*module)->Eval(p, slots);
        }
      }
      return;
    }
    fallback_emit_failed_.fetch_add(1, std::memory_order_relaxed);
  }
  // Graceful degradation: the single-scenario CSR kernel, which shares the
  // canonical operation order, so the batch is still bitwise identical to
  // every other backend — just without the straight-line speedup.
  for (size_t s = 0; s < scenario_count; ++s) {
    compiled.EvaluateRange(poly_begin, poly_end, *scenarios[s], outs[s]);
  }
}

JitBackend::Stats JitBackend::stats() const {
  Stats s;
  s.native_batches = native_batches_.load(std::memory_order_relaxed);
  s.fallback_forced = fallback_forced_.load(std::memory_order_relaxed);
  s.fallback_no_exec_mem =
      fallback_no_exec_mem_.load(std::memory_order_relaxed);
  s.fallback_emit_failed =
      fallback_emit_failed_.load(std::memory_order_relaxed);
  return s;
}

std::unique_ptr<EvaluationBackend> MakeJitBackend() {
  return std::make_unique<JitBackend>();
}

}  // namespace provabs
