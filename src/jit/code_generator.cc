#include "jit/code_generator.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "jit/x86_encoder.h"

namespace provabs {
namespace jit {

namespace {

/// Register plan shared by every emitted function. xmm0 doubles as the
/// accumulator and the SysV return register, so the final addsd leaves the
/// result exactly where `ret` needs it.
constexpr Xmm kTotal = Xmm::xmm0;   // running sum over monomials
constexpr Xmm kTerm = Xmm::xmm1;    // current monomial's product
constexpr Xmm kFactor = Xmm::xmm2;  // loaded slot value
constexpr Gp64 kSlots = Gp64::rdi;  // const double* slots (argument 0)
constexpr Gp64 kOut = Gp64::rsi;    // double* out (range function only)

/// Emits polynomial p's evaluation into kTotal: zero the accumulator, then
/// per monomial materialize the coefficient and multiply factors in the
/// canonical order. Shared by the per-polynomial functions (which follow
/// it with ret) and the full-set range function (which follows it with a
/// store to out[p]).
void EmitPolyBody(X86Encoder& enc, const CompiledPolynomialSet::CsrView& csr,
                  size_t p) {
  // total = 0.0 — xorpd produces +0.0, the same bits the interpreter's
  // accumulator initializer does.
  enc.XorpdZero(kTotal);
  for (uint32_t m = csr.poly_offsets[p]; m < csr.poly_offsets[p + 1]; ++m) {
    // term = coefficient, raw IEEE-754 bits embedded as an imm64.
    uint64_t coeff_bits;
    std::memcpy(&coeff_bits, &csr.coefficients[m], sizeof(coeff_bits));
    enc.MovRaxImm64(coeff_bits);
    enc.MovqFromRax(kTerm);
    for (uint32_t f = csr.mono_offsets[m]; f < csr.mono_offsets[m + 1]; ++f) {
      enc.MovsdLoad(kFactor, kSlots,
                    static_cast<int32_t>(uint64_t{csr.factor_slots[f]} * 8));
      // Exponentiation by repeated multiplication, one mulsd per step —
      // the canonical order (never pow, never a square-and-multiply
      // reassociation).
      for (uint32_t e = 0; e < csr.factor_exps[f]; ++e) {
        enc.Mulsd(kTerm, kFactor);
      }
    }
    enc.Addsd(kTotal, kTerm);
  }
}

}  // namespace

StatusOr<GeneratedCode> GeneratePolynomialSetCode(
    const CompiledPolynomialSet& compiled, size_t max_code_bytes) {
  const CompiledPolynomialSet::CsrView csr = compiled.csr();
  const size_t poly_count = compiled.poly_count();

  // Every slot load and every out[p] store must be reachable as an
  // 8-byte-strided disp32.
  const uint64_t max_index =
      std::max<uint64_t>(compiled.slot_count(), poly_count);
  if (max_index > 0 &&
      (max_index - 1) * 8 > uint64_t{std::numeric_limits<int32_t>::max()}) {
    return Status::OutOfRange("slot offsets exceed disp32 addressing (" +
                              std::to_string(max_index) + " slots)");
  }

  X86Encoder enc;
  GeneratedCode out;
  out.entry_offsets.reserve(poly_count);
  for (size_t p = 0; p < poly_count; ++p) {
    out.entry_offsets.push_back(enc.size());
    EmitPolyBody(enc, csr, p);
    enc.Ret();
    if (enc.size() > max_code_bytes) {
      return Status::OutOfRange(
          "generated code exceeds the per-set cap (" +
          std::to_string(enc.size()) + " > " +
          std::to_string(max_code_bytes) + " bytes after polynomial " +
          std::to_string(p) + ")");
    }
  }
  // The full-set range function: every body again, results stored to
  // out[p] instead of returned. Roughly doubles the blob (still linear in
  // the set's factor count); the cap check continues per polynomial.
  out.range_entry = enc.size();
  for (size_t p = 0; p < poly_count; ++p) {
    EmitPolyBody(enc, csr, p);
    enc.MovsdStore(kOut, static_cast<int32_t>(uint64_t{p} * 8), kTotal);
    if (enc.size() > max_code_bytes) {
      return Status::OutOfRange(
          "generated code exceeds the per-set cap (" +
          std::to_string(enc.size()) + " > " + std::to_string(max_code_bytes) +
          " bytes in the range function at polynomial " + std::to_string(p) +
          ")");
    }
  }
  enc.Ret();
  out.code = enc.TakeCode();
  return out;
}

}  // namespace jit
}  // namespace provabs
