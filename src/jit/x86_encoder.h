#ifndef PROVABS_JIT_X86_ENCODER_H_
#define PROVABS_JIT_X86_ENCODER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace provabs {
namespace jit {

/// Minimal x86-64 instruction encoder for the scalar-double subset the
/// evaluation JIT emits (jit/code_generator.h). This is deliberately NOT a
/// general assembler: the generated functions are straight-line SSE2 code —
/// scalar loads, multiplies, adds, one immediate materialization, ret — so
/// the encoder covers exactly those forms and nothing else, the
/// copy-and-patch-JIT discipline of keeping the encoding surface small
/// enough to pin byte-exactly in unit tests (tests/jit_encoder_test.cc).
///
/// Only SSE2 scalar instructions are emitted (movsd/mulsd/addsd/xorpd):
/// every x86-64 CPU has them, and — unlike compiler-generated AVX with
/// -ffp-contract — scalar mulsd/addsd can never be fused into FMA, so the
/// emitted code performs the canonical operation sequence documented on
/// Valuation::Evaluate bit-for-bit.
///
/// Register surface: xmm0-xmm7 (no REX.R/REX.B needed) and the SysV
/// argument/base registers. Memory operands are [base + disp]; rsp is
/// rejected (it would need a SIB byte) and rbp always takes an explicit
/// displacement (mod=00 rm=101 means RIP-relative) — the code generator
/// only uses rdi/rsi, the checks just keep the encoder honest.

/// SSE registers xmm0..xmm7.
enum class Xmm : uint8_t {
  xmm0 = 0,
  xmm1 = 1,
  xmm2 = 2,
  xmm3 = 3,
  xmm4 = 4,
  xmm5 = 5,
  xmm6 = 6,
  xmm7 = 7,
};

/// General-purpose 64-bit registers usable as memory bases (low eight, no
/// REX.B). rsp is not encodable as a plain base (SIB); the encoder aborts
/// on it.
enum class Gp64 : uint8_t {
  rax = 0,
  rcx = 1,
  rdx = 2,
  rbx = 3,
  rsp = 4,
  rbp = 5,
  rsi = 6,
  rdi = 7,
};

class X86Encoder {
 public:
  /// xorpd dst, dst — zeroes a register (the +0.0 accumulator init, same
  /// bits as the interpreter's `double total = 0.0`).
  void XorpdZero(Xmm dst);

  /// movsd dst, [base + disp] — dense-slot load by fixed offset. Picks the
  /// shortest displacement form (none / disp8 / disp32).
  void MovsdLoad(Xmm dst, Gp64 base, int32_t disp);

  /// movsd [base + disp], src — scalar store by fixed offset.
  void MovsdStore(Gp64 base, int32_t disp, Xmm src);

  /// mulsd dst, src — exactly one IEEE-754 double multiply (never fused).
  void Mulsd(Xmm dst, Xmm src);

  /// addsd dst, src — exactly one IEEE-754 double add.
  void Addsd(Xmm dst, Xmm src);

  /// mov rax, imm64 — materializes a 64-bit constant (a coefficient's raw
  /// IEEE-754 bits, embedded in the instruction stream).
  void MovRaxImm64(uint64_t imm);

  /// movq dst, rax — moves the materialized bits into an SSE register.
  void MovqFromRax(Xmm dst);

  /// ret — the emitted functions return their result in xmm0 (SysV).
  void Ret();

  size_t size() const { return code_.size(); }
  const std::vector<uint8_t>& code() const { return code_; }

  /// Hands the buffer to the caller; the encoder is empty afterwards.
  std::vector<uint8_t> TakeCode() { return std::move(code_); }

 private:
  void Put(uint8_t byte) { code_.push_back(byte); }
  /// ModRM + displacement for a [base + disp] memory operand with `reg` in
  /// the reg field, choosing the shortest encoding.
  void MemOperand(uint8_t reg, Gp64 base, int32_t disp);

  std::vector<uint8_t> code_;
};

}  // namespace jit
}  // namespace provabs

#endif  // PROVABS_JIT_X86_ENCODER_H_
