/// Figure 10: hypothetical-scenario assignment-time speedup as a function
/// of the compression bound. For each bound we compress with the Greedy
/// algorithm, then measure the time to evaluate a batch of valuations on
/// the original vs. the compressed provenance:
///   speedup = (t_original − t_compressed) / t_original.
/// The paper reports up to ~100% for Q1/Q5, just below 80% for the running
/// example, and negligible speedup for Q10 (tiny polynomials, ~0.03%
/// compressible).

#include <cstdio>

#include "abstraction/loss.h"
#include "algo/greedy_multi_tree.h"
#include "bench/bench_util.h"
#include "common/timer.h"
#include "core/valuation.h"
#include "workload/tree_gen.h"

namespace provabs::bench {
namespace {

constexpr int kScenarios = 20;

double TimeScenarios(const PolynomialSet& polys,
                     const std::vector<VariableId>& vars_to_assign) {
  Rng rng(123);
  Timer t;
  double sink = 0;
  for (int s = 0; s < kScenarios; ++s) {
    Valuation val;
    for (VariableId v : vars_to_assign) {
      val.Set(v, rng.UniformReal(0.5, 1.5));
    }
    for (const Polynomial& p : polys.polynomials()) {
      sink += val.Evaluate(p);
    }
  }
  double elapsed = t.ElapsedSeconds();
  if (sink == 42.0) std::printf("#");  // Defeat dead-code elimination.
  return elapsed;
}

void Run() {
  PrintHeader("Figure 10: assignment-time speedup vs bound");
  std::printf("%-16s %12s %10s %12s %12s %9s\n", "workload", "bound",
              "|P'|_M", "t_orig[s]", "t_compr[s]", "speedup");

  for (Workload& w : StandardWorkloads()) {
    AbstractionForest forest;
    forest.AddTree(BuildUniformTree(*w.vars, w.tree_leaves, {8}, "F10_"));

    LossReport max_loss = ComputeLossNaive(
        w.polys, forest, ValidVariableSet::AllRoots(forest));
    const size_t size_m = w.polys.SizeM();
    const size_t min_bound = size_m - max_loss.monomial_loss;

    std::vector<VariableId> assignable = w.tree_leaves;
    assignable.insert(assignable.end(), w.other_leaves.begin(),
                      w.other_leaves.end());
    double t_orig = TimeScenarios(w.polys, assignable);

    for (int step = 0; step <= 4; ++step) {
      size_t bound =
          min_bound + (size_m - min_bound) * static_cast<size_t>(step) / 5;
      if (bound == 0) bound = 1;
      auto greedy = GreedyMultiTree(w.polys, forest, bound);
      if (!greedy.ok()) continue;
      PolynomialSet compressed = greedy->vvs.Apply(forest, w.polys);

      // Assign over the compressed variable space (meta-variables too).
      std::vector<VariableId> compressed_vars(
          compressed.Variables().begin(), compressed.Variables().end());
      double t_compr = TimeScenarios(compressed, compressed_vars);

      double speedup = t_orig > 0 ? (t_orig - t_compr) / t_orig : 0.0;
      std::printf("%-16s %12zu %10zu %12.5f %12.5f %8.1f%%\n",
                  w.name.c_str(), bound, compressed.SizeM(), t_orig, t_compr,
                  100.0 * speedup);
    }
  }
}

}  // namespace
}  // namespace provabs::bench

int main() {
  provabs::bench::Run();
  return 0;
}
