/// Figure 11: compression time as a function of the number of abstraction
/// trees. The paper uses a set of eight 3-level binary trees, each with 16
/// leaves, covering 16 of the 128 variables each; the Greedy algorithm is
/// compared against Brute-Force (whose cut space grows as 677^t).

#include <cstdio>

#include "abstraction/cut_counter.h"
#include "algo/brute_force.h"
#include "algo/greedy_multi_tree.h"
#include "bench/bench_util.h"
#include "common/timer.h"
#include "workload/tree_gen.h"

namespace provabs::bench {
namespace {

void Run() {
  PrintHeader("Figure 11: compression time vs number of trees");
  std::printf("%-16s %8s %14s %10s %12s\n", "workload", "trees", "cuts",
              "greedy[s]", "brute[s]");

  for (Workload& w : StandardWorkloads()) {
    for (size_t num_trees = 2; num_trees <= 8; ++num_trees) {
      AbstractionForest forest;
      for (size_t t = 0; t < num_trees; ++t) {
        // 16 leaves per tree: variables 16t .. 16t+15.
        std::vector<VariableId> leaves(
            w.tree_leaves.begin() + static_cast<long>(16 * t),
            w.tree_leaves.begin() + static_cast<long>(16 * (t + 1)));
        forest.AddTree(BuildUniformTree(
            *w.vars, leaves, {2, 2, 2},
            "F11_" + std::to_string(t) + "_"));
      }
      double cuts = CountForestCutsApprox(forest);
      const size_t bound = FeasibleBound(w.polys, forest, 0.5);

      Timer t_greedy;
      auto greedy = GreedyMultiTree(w.polys, forest, bound);
      double greedy_s = t_greedy.ElapsedSeconds();
      (void)greedy;

      double brute_s = -1.0;
      if (cuts < BruteMaxCuts()) {
        Timer t_brute;
        auto brute = BruteForce(w.polys, forest, bound);
        brute_s = t_brute.ElapsedSeconds();
        (void)brute;
      }

      std::printf("%-16s %8zu %14.4g %10.4f ", w.name.c_str(), num_trees,
                  cuts, greedy_s);
      if (brute_s >= 0) {
        std::printf("%12.4f\n", brute_s);
      } else {
        std::printf("%12s\n", "(skipped)");
      }
    }
  }
}

}  // namespace
}  // namespace provabs::bench

int main() {
  provabs::bench::Run();
  return 0;
}
