/// Extension bench (§5 "work in tandem" goal): storage cost of the
/// provenance under four regimes —
///   flat polynomial | factorized circuit | abstracted | abstracted+factored
/// measured in serialized bytes and circuit edges, plus scenario evaluation
/// time per representation. Lossy abstraction and lossless factorization
/// compose: the last column is the analyst's cheapest artifact.

#include <cstdio>

#include "algo/greedy_multi_tree.h"
#include "bench/bench_util.h"
#include "circuit/factorize.h"
#include "common/timer.h"
#include "core/valuation.h"
#include "io/serializer.h"
#include "workload/tree_gen.h"

namespace provabs::bench {
namespace {

double TimeEval(const std::vector<ProvenanceCircuit>& circuits,
                const Valuation& val) {
  Timer t;
  double sink = 0;
  for (const ProvenanceCircuit& c : circuits) sink += c.Evaluate(val);
  if (sink == 42.0) std::printf("#");
  return t.ElapsedSeconds();
}

void Run() {
  PrintHeader("Circuit storage: abstraction x factorization");
  std::printf("%-16s %-22s %12s %12s %12s\n", "workload", "form", "|M|/edges",
              "bytes", "eval[s]");

  for (Workload& w : StandardWorkloads()) {
    AbstractionForest forest;
    forest.AddTree(BuildUniformTree(*w.vars, w.tree_leaves, {8}, "CS_"));
    const size_t bound = FeasibleBound(w.polys, forest, 0.5);
    auto greedy = GreedyMultiTree(w.polys, forest, bound);
    if (!greedy.ok()) continue;
    PolynomialSet abstracted = greedy->vvs.Apply(forest, w.polys);

    Valuation val;
    for (VariableId v : w.tree_leaves) val.Set(v, 0.9);

    // Flat polynomials.
    {
      Timer t;
      double sink = 0;
      for (const Polynomial& p : w.polys.polynomials()) {
        sink += val.Evaluate(p);
      }
      if (sink == 42.0) std::printf("#");
      std::printf("%-16s %-22s %12zu %12zu %12.4f\n", w.name.c_str(),
                  "flat polynomial", w.polys.SizeM(),
                  SerializePolynomialSet(w.polys, *w.vars).size(),
                  t.ElapsedSeconds());
    }
    // Flat circuit (edges baseline for the factorized comparison).
    {
      std::vector<ProvenanceCircuit> circuits;
      circuits.reserve(w.polys.count());
      for (const Polynomial& p : w.polys.polynomials()) {
        circuits.push_back(FlatCircuit(p));
      }
      CircuitStats stats = StatsOf(circuits);
      std::printf("%-16s %-22s %12zu %12s %12.4f\n", w.name.c_str(),
                  "flat circuit", stats.edges, "-",
                  TimeEval(circuits, val));
    }
    // Factorized (lossless).
    {
      auto circuits = FactorizeSet(w.polys);
      CircuitStats stats = StatsOf(circuits);
      std::printf("%-16s %-22s %12zu %12s %12.4f\n", w.name.c_str(),
                  "factorized circuit", stats.edges, "-",
                  TimeEval(circuits, val));
    }
    // Abstracted (lossy).
    {
      Timer t;
      double sink = 0;
      for (const Polynomial& p : abstracted.polynomials()) {
        sink += val.Evaluate(p);
      }
      if (sink == 42.0) std::printf("#");
      std::printf("%-16s %-22s %12zu %12zu %12.4f\n", w.name.c_str(),
                  "abstracted", abstracted.SizeM(),
                  SerializePolynomialSet(abstracted, *w.vars).size(),
                  t.ElapsedSeconds());
    }
    // Abstracted then factorized.
    {
      auto circuits = FactorizeSet(abstracted);
      CircuitStats stats = StatsOf(circuits);
      std::printf("%-16s %-22s %12zu %12s %12.4f\n", w.name.c_str(),
                  "abstracted+factorized", stats.edges, "-",
                  TimeEval(circuits, val));
    }
  }
}

}  // namespace
}  // namespace provabs::bench

int main() {
  provabs::bench::Run();
  return 0;
}
