/// Extension bench: scenario-program fan-out over the wire. One
/// EvaluateScenarioProgram request expands a 1000-scenario sweep family
/// server-side and evaluates it through the batcher's SIMD lanes; the
/// baseline issues the same 1000 scenarios as individual remote Evaluate
/// requests (assignments reconstructed from a locally expanded program, so
/// both arms evaluate the exact same valuations). The bench exits nonzero
/// unless the two arms' values are IEEE-754 bitwise identical — the
/// scenario subsystem's core contract — and prints a machine-keyed
/// SCENARIOSTAT ratio that tools/bench_smoke.sh thresholds on the machine
/// BENCH_baseline.json was recorded on.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "io/serializer.h"
#include "scenario/program.h"
#include "server/client.h"
#include "server/provenance_service.h"
#include "server/server.h"

namespace provabs::bench {
namespace {

// 10 x 10 x 10 sweep values = 1000 scenarios.
const char kProgram[] =
    "LET a = SWEEP(0.5 .. 1.4 STEP 0.1);"
    "LET b = SWEEP(0.5 .. 1.4 STEP 0.1);"
    "LET c = SWEEP(0.5 .. 1.4 STEP 0.1);"
    "SET PREFIX(plan) = a;"
    "SET PREFIX(m) = b;"
    "SET * = c;";

int Run() {
  PrintHeader("Scenario fan-out: one program request vs per-scenario RPCs");

  Workload w = MakeTelephonyWorkload();

  ProvenanceService service;
  Server server(service, ServerOptions{});
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 started.ToString().c_str());
    return 1;
  }

  LoadRequest load;
  load.artifact = "bench";
  load.polys_bytes = SerializePolynomialSet(w.polys, *w.vars);
  auto client_or = Client::Connect("127.0.0.1", server.port());
  if (!client_or.ok()) {
    std::fprintf(stderr, "connect failed: %s\n",
                 client_or.status().ToString().c_str());
    return 1;
  }
  Client& client = *client_or;
  auto loaded = client.Load(load);
  if (!loaded.ok() || !loaded->ok()) {
    std::fprintf(stderr, "load failed\n");
    return 1;
  }

  // Expand the same program locally to reconstruct each scenario's full
  // assignment list (slot variable name -> value), so the per-request arm
  // evaluates the exact valuations the server-side expansion produces.
  auto compiled = w.polys.Compiled();
  auto program_or =
      scenario::ScenarioProgram::Compile(kProgram, compiled, *w.vars);
  if (!program_or.ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 program_or.status().ToString().c_str());
    return 1;
  }
  const uint64_t total = program_or->scenario_count();
  std::vector<DenseValuation> scenarios;
  Status expanded = program_or->ExpandChunk(0, total, &scenarios);
  if (!expanded.ok()) {
    std::fprintf(stderr, "expand failed: %s\n",
                 expanded.ToString().c_str());
    return 1;
  }
  const std::vector<VariableId>& slot_vars = compiled->slot_variables();
  std::vector<std::string> slot_names;
  slot_names.reserve(slot_vars.size());
  for (VariableId id : slot_vars) {
    slot_names.push_back(std::string(w.vars->NameOf(id)));
  }

  // Arm 1: one remote Evaluate per scenario.
  std::vector<std::vector<double>> per_request;
  per_request.reserve(scenarios.size());
  Timer t_individual;
  for (const DenseValuation& dense : scenarios) {
    EvaluateRequest req;
    req.artifact = "bench";
    for (size_t s = 0; s < slot_names.size(); ++s) {
      req.assignments.emplace_back(slot_names[s], dense[s]);
    }
    auto resp = client.Evaluate(req);
    if (!resp.ok() || !resp->ok()) {
      std::fprintf(stderr, "remote evaluate failed\n");
      return 1;
    }
    per_request.push_back(std::move(resp->values));
  }
  double individual_s = t_individual.ElapsedSeconds();

  // Arm 2: the whole family in one wire request.
  EvaluateScenarioProgramRequest sreq;
  sreq.artifact = "bench";
  sreq.program = kProgram;
  Timer t_program;
  auto sresp = client.EvaluateScenarioProgram(sreq);
  double program_s = t_program.ElapsedSeconds();
  if (!sresp.ok() || !sresp->ok()) {
    std::fprintf(stderr, "scenario program request failed\n");
    return 1;
  }
  if (sresp->scenario_count != total) {
    std::fprintf(stderr, "scenario count mismatch: %llu vs %llu\n",
                 static_cast<unsigned long long>(sresp->scenario_count),
                 static_cast<unsigned long long>(total));
    return 1;
  }

  const size_t poly_count = compiled->poly_count();
  uint64_t mismatches = 0;
  for (size_t i = 0; i < per_request.size(); ++i) {
    if (per_request[i].size() != poly_count ||
        std::memcmp(per_request[i].data(),
                    sresp->values.data() + i * poly_count,
                    poly_count * sizeof(double)) != 0) {
      ++mismatches;
    }
  }

  std::printf("%-28s %14s %16s %10s\n", "1000-scenario sweep",
              "total[s]", "scenarios/s", "speedup");
  std::printf("%-28s %14.4f %16.0f %10s\n", "per-scenario RPCs",
              individual_s, total / individual_s, "1x");
  std::printf("%-28s %14.4f %16.0f %9.1fx\n", "one program request",
              program_s, total / program_s,
              program_s > 0 ? individual_s / program_s : 0.0);
  std::printf("bitwise identity: %s (%llu/%llu scenarios differ)\n",
              mismatches == 0 ? "ok" : "FAILED",
              static_cast<unsigned long long>(mismatches),
              static_cast<unsigned long long>(total));
  std::printf("MACHINEKEY cpu=%s\n", CpuModel().c_str());
  std::printf("SCENARIOSTAT scenarios=%llu ratio=%.1f\n",
              static_cast<unsigned long long>(total),
              program_s > 0 ? individual_s / program_s : 0.0);

  ShutdownRequest shutdown;
  client.Shutdown(shutdown);
  server.Wait();
  return mismatches == 0 ? 0 : 1;
}

}  // namespace
}  // namespace provabs::bench

int main() { return provabs::bench::Run(); }
