/// Complexity bench (§2.5 / Appendix A): behaviour of the algorithms on
/// the NP-hardness family — uniformly partitioned polynomials P⟨X, n, I⟩
/// under their flat abstractions. With the flat forest the decision problem
/// is NP-hard, yet the greedy heuristic stays polynomial and the exhaustive
/// subset search (2^|X|) blows up — the practical face of Proposition 11.
/// For a single flat tree, OptimalSingleTree stays PTIME (Proposition 12).

#include <cstdio>

#include "algo/greedy_multi_tree.h"
#include "algo/optimal_single_tree.h"
#include "bench/bench_util.h"
#include "common/timer.h"
#include "workload/uniform_polynomial.h"

namespace provabs::bench {
namespace {

void Run() {
  PrintHeader("NP-hardness family: uniformly partitioned polynomials");
  std::printf("%6s %6s %10s %12s %12s %14s\n", "|X|", "n", "|P|_M",
              "greedy[s]", "opt1tree[s]", "exhaustive[s]");

  for (uint32_t x : {4u, 8u, 12u, 16u, 20u}) {
    const uint32_t n = 4;
    VariableTable vars;
    // Edge set: a cycle plus chords — every metavariable used.
    std::vector<std::pair<uint32_t, uint32_t>> pairs;
    for (uint32_t a = 0; a + 1 < x; ++a) pairs.emplace_back(a, a + 1);
    for (uint32_t a = 0; a + 3 < x; a += 2) pairs.emplace_back(a, a + 3);
    UniformInstance inst = MakeUniformInstance(vars, x, n, pairs);

    PolynomialSet polys;
    polys.Add(inst.polynomial);
    const size_t bound = polys.SizeM() / 2;

    Timer t_greedy;
    auto greedy = GreedyMultiTree(polys, inst.flat_abstraction, bound);
    double greedy_s = t_greedy.ElapsedSeconds();
    (void)greedy;

    // Single-tree optimal on the first flat tree (PTIME fragment).
    Timer t_opt;
    auto opt = OptimalSingleTree(polys, inst.flat_abstraction, 0,
                                 polys.SizeM() - 1);
    double opt_s = t_opt.ElapsedSeconds();
    (void)opt;

    // Exhaustive 2^|X| subset search via the Claim 23 formulas.
    Timer t_exhaustive;
    size_t best_v = 0;
    for (uint64_t mask = 0; mask < (1ull << x); ++mask) {
      std::vector<bool> abstracted(x);
      for (uint32_t a = 0; a < x; ++a) abstracted[a] = (mask >> a) & 1;
      auto [size_m, size_v] = PredictAbstractedSizes(inst, abstracted);
      if (size_m <= bound && size_v > best_v) best_v = size_v;
    }
    double exhaustive_s = t_exhaustive.ElapsedSeconds();
    (void)best_v;

    std::printf("%6u %6u %10zu %12.4f %12.4f %14.4f\n", x, n,
                polys.SizeM(), greedy_s, opt_s, exhaustive_s);
  }
}

}  // namespace
}  // namespace provabs::bench

int main() {
  provabs::bench::Run();
  return 0;
}
