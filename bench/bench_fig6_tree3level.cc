/// Figure 6: compression time as a function of the number of valid variable
/// sets for 3-level abstraction trees (Table 2 types 2, 3 and 4 — root
/// fan-out 2, 4 and 8). Series: Opt VVS and Greedy per type.

#include <cstdio>

#include "abstraction/cut_counter.h"
#include "algo/greedy_multi_tree.h"
#include "algo/optimal_single_tree.h"
#include "bench/bench_util.h"
#include "common/timer.h"
#include "workload/tree_gen.h"

namespace provabs::bench {
namespace {

void Run() {
  PrintHeader("Figure 6: compression time vs #VVS (3-level trees, types 2-4)");
  std::printf("%-16s %5s %-10s %14s %10s %10s\n", "workload", "type",
              "fanouts", "cuts", "opt[s]", "greedy[s]");

  for (Workload& w : StandardWorkloads()) {
    for (int type : {2, 3, 4}) {
      for (const TreeTypeSpec& spec : TreeSpecsOfType(type)) {
        AbstractionForest forest;
        forest.AddTree(
            BuildUniformTree(*w.vars, w.tree_leaves, spec.fanouts, "F6_"));
        double cuts = CountCutsApprox(forest.tree(0));
        const size_t bound = FeasibleBound(w.polys, forest, 0.5);

        Timer t_opt;
        auto opt = OptimalSingleTree(w.polys, forest, 0, bound);
        double opt_s = t_opt.ElapsedSeconds();
        (void)opt;

        Timer t_greedy;
        auto greedy = GreedyMultiTree(w.polys, forest, bound);
        double greedy_s = t_greedy.ElapsedSeconds();
        (void)greedy;

        std::string fanouts;
        for (uint32_t f : spec.fanouts) {
          fanouts += (fanouts.empty() ? "" : "x") + std::to_string(f);
        }
        std::printf("%-16s %5d %-10s %14.4g %10.4f %10.4f\n", w.name.c_str(),
                    type, fanouts.c_str(), cuts, opt_s, greedy_s);
      }
    }
  }
}

}  // namespace
}  // namespace provabs::bench

int main() {
  provabs::bench::Run();
  return 0;
}
