#ifndef PROVABS_BENCH_BENCH_UTIL_H_
#define PROVABS_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "abstraction/loss.h"
#include "algo/compressor.h"
#include "common/random.h"
#include "core/polynomial_set.h"
#include "core/variable.h"
#include "workload/telephony.h"
#include "workload/tpch.h"
#include "workload/tree_gen.h"

namespace provabs::bench {

/// One of the paper's four experimental workloads (§4.2), fully
/// materialized: the provenance polynomials plus the 128-variable leaf set
/// the abstraction trees are built over (supplier variables for TPC-H,
/// plan variables for the running example).
struct Workload {
  std::string name;
  std::shared_ptr<VariableTable> vars;
  PolynomialSet polys;
  std::vector<VariableId> tree_leaves;   ///< 128 abstraction-tree leaves.
  std::vector<VariableId> other_leaves;  ///< The other parameter family.
};

/// Scale knob: PROVABS_BENCH_SCALE environment variable (default 1.0)
/// multiplies every workload's base size, so the harness runs in seconds on
/// a laptop and can be scaled up to stress levels.
inline double BenchScale() {
  const char* env = std::getenv("PROVABS_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  double v = std::atof(env);
  return v > 0 ? v : 1.0;
}

/// Cut-count ceiling for the brute-force series (PROVABS_BRUTE_MAX_CUTS,
/// default 2000). The paper's brute force needed hundreds of seconds from
/// ~66,050 cuts onwards; the default keeps the shipped harness fast while
/// still showing the exponential blow-up. Raise the env var to reproduce
/// the paper's full dotted lines.
inline double BruteMaxCuts() {
  const char* env = std::getenv("PROVABS_BRUTE_MAX_CUTS");
  if (env == nullptr) return 2000.0;
  double v = std::atof(env);
  return v > 0 ? v : 2000.0;
}

/// `--algo a[,b,...]` flag shared by the compression benches: selects which
/// registered algorithms a bench runs, defaulting to `fallback`. Names are
/// resolved against CompressorRegistry::Default(); an unknown name (or any
/// other argument) exits 2 listing the registered set — the same "typos
/// fail loudly" contract the CLI follows.
inline std::vector<std::string> SelectedAlgos(
    int argc, char** argv, std::vector<std::string> fallback) {
  std::vector<std::string> selected;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--algo") != 0 || i + 1 >= argc) {
      std::fprintf(stderr,
                   "usage: %s [--algo NAME[,NAME...]]  (registered: %s)\n",
                   argv[0],
                   CompressorRegistry::Default().NamesCsv().c_str());
      std::exit(2);
    }
    std::string spec = argv[++i];
    size_t pos = 0;
    while (pos <= spec.size()) {
      size_t comma = spec.find(',', pos);
      if (comma == std::string::npos) comma = spec.size();
      std::string name = spec.substr(pos, comma - pos);
      if (name.empty()) {
        // A trailing/doubled comma or --algo "" would otherwise surface as
        // the baffling "unknown algorithm ''".
        std::fprintf(stderr, "%s: empty algorithm name in --algo '%s'\n",
                     argv[0], spec.c_str());
        std::exit(2);
      }
      selected.push_back(std::move(name));
      pos = comma + 1;
    }
  }
  if (selected.empty()) selected = std::move(fallback);
  for (const std::string& name : selected) {
    if (CompressorRegistry::Default().Find(name) == nullptr) {
      std::fprintf(stderr, "unknown algorithm '%s' (registered: %s)\n",
                   name.c_str(),
                   CompressorRegistry::Default().NamesCsv().c_str());
      std::exit(2);
    }
  }
  return selected;
}

inline Workload MakeTpchWorkload(TpchQuery query, const std::string& name,
                                 double scale = BenchScale()) {
  Workload w;
  w.name = name;
  w.vars = std::make_shared<VariableTable>();
  TpchConfig config;
  config.scale_factor = 0.3 * scale;
  Rng rng(config.seed);
  Database db = GenerateTpch(config, rng);
  TpchVars tv = MakeTpchVars(*w.vars, 128);
  w.polys = RunTpchQuery(query, db, tv);
  w.tree_leaves = tv.supplier_vars;
  w.other_leaves = tv.part_vars;
  return w;
}

inline Workload MakeTelephonyWorkload(double scale = BenchScale()) {
  Workload w;
  w.name = "running-example";
  w.vars = std::make_shared<VariableTable>();
  TelephonyConfig config;
  config.num_customers =
      static_cast<size_t>(2000 * scale) < 1 ? 1
          : static_cast<size_t>(2000 * scale);
  config.num_plans = 128;
  config.num_months = 12;
  config.num_zip_codes = 50;
  Rng rng(config.seed);
  Database db = GenerateTelephony(config, rng);
  TelephonyVars tv = MakeTelephonyVars(*w.vars, config);
  w.polys = RunTelephonyQuery(db, tv);
  w.tree_leaves = tv.plan_vars;
  w.other_leaves = tv.month_vars;
  return w;
}

/// The four standard workloads in the order the paper's figures use:
/// TPC-H Q5, TPC-H Q10, TPC-H Q1, running example.
inline std::vector<Workload> StandardWorkloads() {
  std::vector<Workload> all;
  all.push_back(MakeTpchWorkload(TpchQuery::kQ5, "tpch-q5"));
  all.push_back(MakeTpchWorkload(TpchQuery::kQ10, "tpch-q10"));
  all.push_back(MakeTpchWorkload(TpchQuery::kQ1, "tpch-q1"));
  all.push_back(MakeTelephonyWorkload());
  return all;
}

/// CPU model string from /proc/cpuinfo — the MACHINEKEY the smoke script
/// matches against the BENCH_*.json reference files, so perf thresholds
/// only apply on the machine the reference numbers were recorded on.
inline std::string CpuModel() {
  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (std::getline(cpuinfo, line)) {
    if (line.rfind("model name", 0) != 0) continue;
    size_t colon = line.find(':');
    if (colon == std::string::npos) break;
    size_t start = line.find_first_not_of(" \t", colon + 1);
    return start == std::string::npos ? "" : line.substr(start);
  }
  return "unknown";
}

/// Prints a separator + figure/table header.
inline void PrintHeader(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

/// Bound targeting `fraction` of the monomial loss achievable with this
/// forest. The paper fixes B = 0.5·|P|_M, which presumes its multi-gigabyte
/// inputs where the parameter grid is dense; at laptop scale the sparse
/// TPC-H provenance often cannot reach 50% (the paper itself observes Q10's
/// maximal compression is ~0.03%), so harnesses aim at the feasible range's
/// midpoint — identical code paths, always-meaningful results.
inline size_t FeasibleBound(const PolynomialSet& polys,
                            const AbstractionForest& forest,
                            double fraction) {
  LossReport max_loss =
      ComputeLossNaive(polys, forest, ValidVariableSet::AllRoots(forest));
  size_t target_loss = static_cast<size_t>(
      fraction * static_cast<double>(max_loss.monomial_loss));
  size_t bound = polys.SizeM() - target_loss;
  return bound == 0 ? 1 : bound;
}

}  // namespace provabs::bench

#endif  // PROVABS_BENCH_BENCH_UTIL_H_
