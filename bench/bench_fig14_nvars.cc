/// Figure 14 (Appendix B): compression time as a function of the number of
/// variables in the input data. The paper fixes the 128-leaf supplier
/// abstraction tree and grows the total variable count to 8000 by refining
/// the other parameter family; for Q1/Q5 this inflates each polynomial's
/// monomial count (moderate runtime growth), while Q10 and the running
/// example are dominated by their polynomial count and barely move.

#include <cstdio>

#include "algo/greedy_multi_tree.h"
#include "algo/optimal_single_tree.h"
#include "bench/bench_util.h"
#include "common/random.h"
#include "common/timer.h"
#include "workload/tpch.h"
#include "workload/tree_gen.h"

namespace provabs::bench {
namespace {

void Run() {
  PrintHeader("Figure 14: compression time vs number of variables");
  std::printf("%-16s %10s %12s %10s %10s\n", "workload", "vars", "|P|_M",
              "opt[s]", "greedy[s]");

  TpchConfig config;
  config.scale_factor = 0.3 * BenchScale();
  Rng rng(config.seed);
  Database db = GenerateTpch(config, rng);

  for (TpchQuery q : {TpchQuery::kQ5, TpchQuery::kQ1}) {
    const char* name = q == TpchQuery::kQ5 ? "tpch-q5" : "tpch-q1";
    // Grow the part-variable family; the supplier tree stays at 128 leaves.
    for (size_t part_groups : {16u, 64u, 256u, 1024u, 4096u}) {
      VariableTable vars;
      TpchVars tv;
      // 128 supplier groups (tree leaves) + growing part groups.
      for (size_t i = 0; i < 128; ++i) {
        tv.supplier_vars.push_back(vars.Intern("s" + std::to_string(i)));
      }
      for (size_t i = 0; i < part_groups; ++i) {
        tv.part_vars.push_back(vars.Intern("p" + std::to_string(i)));
      }
      PolynomialSet polys = RunTpchQuery(q, db, tv);

      AbstractionForest forest;
      forest.AddTree(
          BuildUniformTree(vars, tv.supplier_vars, {8}, "F14_"));
      const size_t bound = polys.SizeM() / 2;

      Timer t_opt;
      auto opt = OptimalSingleTree(polys, forest, 0, bound);
      double opt_s = t_opt.ElapsedSeconds();
      (void)opt;

      Timer t_greedy;
      auto greedy = GreedyMultiTree(polys, forest, bound);
      double greedy_s = t_greedy.ElapsedSeconds();
      (void)greedy;

      std::printf("%-16s %10zu %12zu %10.4f %10.4f\n", name,
                  128 + part_groups, polys.SizeM(), opt_s, greedy_s);
    }
  }
}

}  // namespace
}  // namespace provabs::bench

int main() {
  provabs::bench::Run();
  return 0;
}
