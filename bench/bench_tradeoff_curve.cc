/// Extension bench: the complete size/granularity Pareto frontier per
/// workload from ONE run of Algorithm 1's dynamic program (the paper
/// optimizes one bound at a time; the root DP array already contains every
/// precise abstraction of Definition 7). Prints the curve and the time to
/// obtain it, compared against solving each bound independently.

#include <cstdio>

#include "algo/optimal_single_tree.h"
#include "algo/tradeoff_curve.h"
#include "bench/bench_util.h"
#include "common/timer.h"
#include "workload/tree_gen.h"

namespace provabs::bench {
namespace {

void Run() {
  PrintHeader("Trade-off curve: full Pareto frontier per workload");
  for (Workload& w : StandardWorkloads()) {
    AbstractionForest forest;
    forest.AddTree(BuildUniformTree(*w.vars, w.tree_leaves, {4, 4}, "TC_"));

    Timer t_curve;
    auto curve = OptimalTradeoffCurve(w.polys, forest, 0);
    double curve_s = t_curve.ElapsedSeconds();
    if (!curve.ok()) {
      std::printf("%-16s %s\n", w.name.c_str(),
                  curve.status().ToString().c_str());
      continue;
    }

    // Time the per-bound alternative over the same frontier points.
    Timer t_sweep;
    for (const TradeoffPoint& p : *curve) {
      auto r = OptimalSingleTree(w.polys, forest, 0, p.size_m);
      (void)r;
    }
    double sweep_s = t_sweep.ElapsedSeconds();

    std::printf("%-16s |P|_M=%zu frontier=%zu points  one-shot %.4fs vs "
                "per-bound sweep %.4fs\n",
                w.name.c_str(), w.polys.SizeM(), curve->size(), curve_s,
                sweep_s);
    std::printf("    %12s %14s\n", "size", "variable loss");
    for (const TradeoffPoint& p : *curve) {
      std::printf("    %12zu %14zu\n", p.size_m, p.variable_loss);
    }
  }
}

}  // namespace
}  // namespace provabs::bench

int main() {
  provabs::bench::Run();
  return 0;
}
