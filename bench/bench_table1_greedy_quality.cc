/// Table 1: greedy algorithm average accuracy and speedup per tree type.
/// For every tree type (1..7, one configuration per type as in the paper's
/// summary) and every workload, run Opt VVS and Greedy at bound 0.5·|P|_M;
/// report
///   accuracy = remaining granularity of Greedy / remaining granularity of
///              Opt  (100% when the greedy VVS is optimal), and
///   speedup  = (t_opt − t_greedy) / t_opt.
/// The paper's trends: type 1 trees are ~100% accurate; accuracy drops with
/// tree depth; Q1/Q5 (few polynomials) are more accurate than Q10 and the
/// running example (many polynomials, more sensitivity to local choices).

#include <cstdio>

#include "algo/greedy_multi_tree.h"
#include "algo/optimal_single_tree.h"
#include "bench/bench_util.h"
#include "common/timer.h"
#include "workload/tree_gen.h"

namespace provabs::bench {
namespace {

void Run() {
  PrintHeader("Table 1: greedy accuracy and speedup per tree type");
  std::printf("%-16s %5s %-9s %10s %10s %9s %9s\n", "workload", "type",
              "fanouts", "opt[s]", "greedy[s]", "accuracy", "speedup");

  for (Workload& w : StandardWorkloads()) {
    for (int type = 1; type <= 7; ++type) {
      // One representative configuration per type (middle of Table 2).
      auto specs = TreeSpecsOfType(type);
      const TreeTypeSpec& spec = specs[specs.size() / 2];

      AbstractionForest forest;
      forest.AddTree(
          BuildUniformTree(*w.vars, w.tree_leaves, spec.fanouts, "T1_"));
      const size_t bound = FeasibleBound(w.polys, forest, 0.5);

      Timer t_opt;
      auto opt = OptimalSingleTree(w.polys, forest, 0, bound);
      double opt_s = t_opt.ElapsedSeconds();

      Timer t_greedy;
      auto greedy = GreedyMultiTree(w.polys, forest, bound);
      double greedy_s = t_greedy.ElapsedSeconds();

      std::string fanouts;
      for (uint32_t f : spec.fanouts) {
        fanouts += (fanouts.empty() ? "" : "x") + std::to_string(f);
      }

      if (!opt.ok() || !greedy.ok()) {
        std::printf("%-16s %5d %-9s %10s\n", w.name.c_str(), type,
                    fanouts.c_str(), "infeasible");
        continue;
      }
      const size_t size_v = w.polys.SizeV();
      double remaining_opt =
          static_cast<double>(size_v - opt->loss.variable_loss);
      double remaining_greedy =
          static_cast<double>(size_v - greedy->loss.variable_loss);
      double accuracy =
          remaining_opt > 0 ? 100.0 * remaining_greedy / remaining_opt : 100;
      double speedup = opt_s > 0 ? 100.0 * (opt_s - greedy_s) / opt_s : 0;

      std::printf("%-16s %5d %-9s %10.4f %10.4f %8.2f%% %8.2f%%\n",
                  w.name.c_str(), type, fanouts.c_str(), opt_s, greedy_s,
                  accuracy, speedup);
    }
  }
}

}  // namespace
}  // namespace provabs::bench

int main() {
  provabs::bench::Run();
  return 0;
}
