/// Figure 8: provenance compression time as a function of the input data
/// size (number of tuples). The paper grows TPC-H fragments and telephony
/// customers; we sweep the generator scale. Series: Opt VVS and Greedy,
/// with the 2-level 8-fanout supplier/plans tree and bound = 0.5·|P|_M.

#include <cstdio>

#include "algo/greedy_multi_tree.h"
#include "algo/optimal_single_tree.h"
#include "bench/bench_util.h"
#include "common/timer.h"
#include "workload/tree_gen.h"

namespace provabs::bench {
namespace {

void RunOne(Workload w, size_t input_rows) {
  AbstractionForest forest;
  forest.AddTree(BuildUniformTree(*w.vars, w.tree_leaves, {8}, "F8_"));
  const size_t bound = FeasibleBound(w.polys, forest, 0.5);

  Timer t_opt;
  auto opt = OptimalSingleTree(w.polys, forest, 0, bound);
  double opt_s = t_opt.ElapsedSeconds();
  (void)opt;

  Timer t_greedy;
  auto greedy = GreedyMultiTree(w.polys, forest, bound);
  double greedy_s = t_greedy.ElapsedSeconds();
  (void)greedy;

  std::printf("%-16s %12zu %12zu %10.4f %10.4f\n", w.name.c_str(),
              input_rows, w.polys.SizeM(), opt_s, greedy_s);
}

void Run() {
  PrintHeader("Figure 8: compression time vs input data size");
  std::printf("%-16s %12s %12s %10s %10s\n", "workload", "input_rows",
              "|P|_M", "opt[s]", "greedy[s]");

  const double base = BenchScale();
  for (double mult : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    double scale = base * mult;
    for (TpchQuery q : {TpchQuery::kQ5, TpchQuery::kQ10, TpchQuery::kQ1}) {
      const char* name = q == TpchQuery::kQ5   ? "tpch-q5"
                         : q == TpchQuery::kQ10 ? "tpch-q10"
                                                : "tpch-q1";
      TpchConfig config;
      config.scale_factor = 0.3 * scale;
      size_t rows = config.NumLineitems() + config.NumOrders() +
                    config.NumCustomers() + config.NumSuppliers() +
                    config.NumParts();
      RunOne(MakeTpchWorkload(q, name, scale), rows);
    }
    TelephonyConfig tc;
    tc.num_customers = static_cast<size_t>(2000 * scale);
    size_t rows = tc.num_customers * (1 + tc.num_months);
    RunOne(MakeTelephonyWorkload(scale), rows);
  }
}

}  // namespace
}  // namespace provabs::bench

int main() {
  provabs::bench::Run();
  return 0;
}
