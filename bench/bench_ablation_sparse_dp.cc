/// Ablation (§4.1 "Optimizing Av computation"): Algorithm 1 with
///  (a) sparse hash-map DP arrays + height-1 shortcut (the paper's
///      optimized configuration, our default),
///  (b) dense ⊥-padded arrays,
///  (c) sparse arrays without the height-1 shortcut.
/// Most DP entries are ⊥, so the sparse representation skips the dead
/// (k+1)²-size convolution work.

#include <benchmark/benchmark.h>

#include "algo/optimal_single_tree.h"
#include "bench/bench_util.h"
#include "workload/tree_gen.h"

namespace provabs::bench {
namespace {

struct Setup {
  Workload workload;
  AbstractionForest forest;
  size_t bound;

  Setup() : workload(MakeTelephonyWorkload(0.25)) {
    forest.AddTree(BuildUniformTree(*workload.vars, workload.tree_leaves,
                                    {4, 4}, "SD_"));
    // A deep bound (90% of achievable loss) makes k large, which is where
    // the dense (k+1)-sized arrays pay for their dead entries.
    bound = FeasibleBound(workload.polys, forest, 0.9);
  }
};

Setup& GetSetup() {
  static Setup* setup = new Setup();
  return *setup;
}

void RunWith(benchmark::State& state, const OptimalOptions& options) {
  Setup& s = GetSetup();
  for (auto _ : state) {
    auto result = OptimalSingleTree(s.workload.polys, s.forest, 0, s.bound,
                                    options);
    benchmark::DoNotOptimize(result);
  }
}

OptimalOptions MakeOptions(bool sparse, bool shortcut) {
  OptimalOptions options;
  options.sparse_arrays = sparse;
  options.height1_shortcut = shortcut;
  return options;
}

void BM_SparseWithShortcut(benchmark::State& state) {
  RunWith(state, MakeOptions(true, true));
}
BENCHMARK(BM_SparseWithShortcut)->Unit(benchmark::kMillisecond);

void BM_DenseArrays(benchmark::State& state) {
  RunWith(state, MakeOptions(false, true));
}
BENCHMARK(BM_DenseArrays)->Unit(benchmark::kMillisecond);

void BM_SparseNoShortcut(benchmark::State& state) {
  RunWith(state, MakeOptions(true, false));
}
BENCHMARK(BM_SparseNoShortcut)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace provabs::bench

BENCHMARK_MAIN();
