/// Figure 5: provenance compression time as a function of the number of
/// valid variable sets, for 2-level abstraction trees (Table 2 type 1,
/// inner fan-out 2..64), on the four standard workloads. Series: Opt VVS
/// (Algorithm 1), Greedy (Algorithm 2), and Brute-Force where the cut
/// space is small enough (the paper's brute force only finished below
/// ~80,000 cuts).

#include <cstdio>

#include "abstraction/cut_counter.h"
#include "algo/brute_force.h"
#include "algo/greedy_multi_tree.h"
#include "algo/optimal_single_tree.h"
#include "bench/bench_util.h"
#include "common/timer.h"
#include "workload/tree_gen.h"

namespace provabs::bench {
namespace {

void Run() {
  PrintHeader("Figure 5: compression time vs #VVS (2-level trees, type 1)");
  std::printf("%-16s %-10s %14s %10s %10s %12s\n", "workload", "fanout",
              "cuts", "opt[s]", "greedy[s]", "brute[s]");

  for (Workload& w : StandardWorkloads()) {
    for (const TreeTypeSpec& spec : TreeSpecsOfType(1)) {
      AbstractionForest forest;
      forest.AddTree(
          BuildUniformTree(*w.vars, w.tree_leaves, spec.fanouts, "F5_"));
      double cuts = CountCutsApprox(forest.tree(0));
      const size_t bound = FeasibleBound(w.polys, forest, 0.5);

      Timer t_opt;
      auto opt = OptimalSingleTree(w.polys, forest, 0, bound);
      double opt_s = t_opt.ElapsedSeconds();

      Timer t_greedy;
      auto greedy = GreedyMultiTree(w.polys, forest, bound);
      double greedy_s = t_greedy.ElapsedSeconds();

      double brute_s = -1.0;
      if (cuts < BruteMaxCuts()) {
        Timer t_brute;
        auto brute = BruteForce(w.polys, forest, bound);
        brute_s = t_brute.ElapsedSeconds();
        (void)brute;
      }

      std::printf("%-16s %-10u %14.4g %10.4f %10.4f ", w.name.c_str(),
                  spec.fanouts[0], cuts, opt_s, greedy_s);
      if (brute_s >= 0) {
        std::printf("%12.4f", brute_s);
      } else {
        std::printf("%12s", "(skipped)");
      }
      std::printf("  opt:%s greedy:%s\n",
                  opt.ok() ? (opt->adequate ? "ok" : "partial")
                           : "infeasible",
                  greedy.ok() && greedy->adequate ? "ok" : "partial");
    }
  }
}

}  // namespace
}  // namespace provabs::bench

int main() {
  provabs::bench::Run();
  return 0;
}
