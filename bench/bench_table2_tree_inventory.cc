/// Table 2: the abstraction-tree inventory — for every tree structure used
/// in the experiments, its paper type, node count, per-level fan-outs, and
/// number of valid variable sets (cuts). Regenerates the appendix table.

#include <cstdio>
#include <string>

#include "abstraction/cut_counter.h"
#include "core/variable.h"
#include "workload/tree_gen.h"

namespace provabs::bench {
namespace {

void Run() {
  std::printf("==== Table 2: abstraction tree types (128 leaves) ====\n");
  std::printf("%5s %7s %-12s %18s\n", "type", "nodes", "fanouts", "VVS");

  for (const TreeTypeSpec& spec : AllTreeSpecs()) {
    VariableTable vars;
    std::vector<VariableId> leaves;
    for (size_t i = 0; i < 128; ++i) {
      leaves.push_back(vars.Intern("s" + std::to_string(i)));
    }
    AbstractionTree tree = BuildUniformTree(vars, leaves, spec.fanouts, "t");
    std::string fanouts;
    for (uint32_t f : spec.fanouts) {
      fanouts += (fanouts.empty() ? "" : " ") + std::to_string(f);
    }
    uint64_t exact = CountCutsExact(tree);
    if (exact != kSaturated) {
      std::printf("%5d %7zu %-12s %18llu\n", spec.type, tree.node_count(),
                  fanouts.c_str(), static_cast<unsigned long long>(exact));
    } else {
      std::printf("%5d %7zu %-12s %18.5E\n", spec.type, tree.node_count(),
                  fanouts.c_str(), CountCutsApprox(tree));
    }
  }
}

}  // namespace
}  // namespace provabs::bench

int main() {
  provabs::bench::Run();
  return 0;
}
