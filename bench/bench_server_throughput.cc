/// Extension bench: serving-layer throughput. Measures the three effects
/// the provenance server exists for (ROADMAP "serving layer"): (1) the
/// artifact cache turning repeat compressions into O(1) lookups, (2) the
/// evaluate batcher coalescing concurrent analyst valuations onto one
/// thread pool versus each request running EvaluateAll alone, and (3) the
/// single-flight layer collapsing a same-key burst of concurrent compress
/// requests to one DP run while distinct-key bursts proceed in parallel.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "core/valuation.h"
#include "io/serializer.h"
#include "parallel/thread_pool.h"
#include "server/client.h"
#include "server/provenance_service.h"
#include "server/server.h"

namespace provabs::bench {
namespace {

void Run(const std::vector<std::string>& algos) {
  PrintHeader("Serving layer: compression cache and evaluate batching");

  Workload w = MakeTelephonyWorkload();
  AbstractionForest forest;
  forest.AddTree(
      BuildUniformTree(*w.vars, w.tree_leaves, {4, 4}, "SRV_"));
  const size_t bound = FeasibleBound(w.polys, forest, 0.5);

  // A small forest over a leaf subset for the per-algorithm scenario: its
  // cut space is tiny, so even the exhaustive "brute" finishes and every
  // registered algorithm is comparable on one instance.
  std::vector<VariableId> small_leaves(
      w.tree_leaves.begin(),
      w.tree_leaves.begin() +
          std::min<size_t>(w.tree_leaves.size(), 32));
  AbstractionForest small_forest;
  small_forest.AddTree(
      BuildUniformTree(*w.vars, small_leaves, {2, 2}, "SRVS_"));
  const size_t small_bound = FeasibleBound(w.polys, small_forest, 0.5);

  ProvenanceService service;
  LoadRequest load;
  load.artifact = "bench";
  load.polys_bytes = SerializePolynomialSet(w.polys, *w.vars);
  load.forests = {{"default", SerializeForest(forest, *w.vars)},
                  {"small", SerializeForest(small_forest, *w.vars)}};
  Response loaded = service.Load(load);
  if (!loaded.ok()) {
    std::printf("load failed: %s\n", loaded.message.c_str());
    return;
  }

  // (1) Compression: cold DP vs cache hit.
  CompressRequest compress;
  compress.artifact = "bench";
  compress.bound = bound;
  Timer t_cold;
  Response cold = service.Compress(compress);
  double cold_s = t_cold.ElapsedSeconds();
  constexpr int kHits = 1000;
  Timer t_hits;
  for (int i = 0; i < kHits; ++i) service.Compress(compress);
  double hit_s = t_hits.ElapsedSeconds() / kHits;
  std::printf("%-28s %14s %16s %10s\n", "compress", "cold[s]",
              "cache-hit[s]", "speedup");
  std::printf("%-28s %14.5f %16.8f %9.0fx%s\n", "opt DP", cold_s, hit_s,
              hit_s > 0 ? cold_s / hit_s : 0.0,
              cold.ok() ? "" : " (error)");
  // Machine-keyed stat lines for tools/bench_smoke.sh: on the machine
  // BENCH_baseline.json was recorded on, the cached-compress ratio is
  // thresholded — a cache hit collapsing to less than the recorded floor
  // over the cold DP means the hot serving path regressed.
  std::printf("MACHINEKEY cpu=%s\n", CpuModel().c_str());
  std::printf("SRVSTAT metric=cached_compress ratio=%.1f\n",
              hit_s > 0 ? cold_s / hit_s : 0.0);

  // (2) Evaluation: per-request serial loop vs batched concurrent clients.
  const int kClients = 8;
  const int kRequestsPerClient = 50;
  std::vector<Valuation> valuations;
  for (int c = 0; c < kClients; ++c) {
    Valuation val;
    for (VariableId v : w.tree_leaves) val.Set(v, 0.5 + 0.05 * c);
    valuations.push_back(std::move(val));
  }

  Timer t_serial;
  for (int r = 0; r < kRequestsPerClient; ++r) {
    for (int c = 0; c < kClients; ++c) {
      auto answers = valuations[c].EvaluateAll(w.polys);
      (void)answers;
    }
  }
  double serial_s = t_serial.ElapsedSeconds();

  ThreadPool pool(std::thread::hardware_concurrency());
  EvaluateBatcher batcher(pool);
  auto shared = std::make_shared<PolynomialSet>(w.polys);
  Timer t_batched;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < kRequestsPerClient; ++r) {
        auto answers = batcher.Evaluate(shared, valuations[c]);
        (void)answers;
      }
    });
  }
  for (auto& t : clients) t.join();
  double batched_s = t_batched.ElapsedSeconds();

  const double total = static_cast<double>(kClients) * kRequestsPerClient;
  std::printf("\n%-28s %14s %16s %10s\n", "evaluate (8 clients x 50)",
              "total[s]", "req/s", "speedup");
  std::printf("%-28s %14.4f %16.0f %10s\n", "serial loop", serial_s,
              total / serial_s, "1x");
  std::printf("%-28s %14.4f %16.0f %9.1fx\n", "batched (pool)", batched_s,
              total / batched_s, serial_s / batched_s);
  EvaluateBatcher::Stats stats = batcher.stats();
  std::printf("batcher: %llu requests in %llu batches (max batch %llu)\n",
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.batches),
              static_cast<unsigned long long>(stats.max_batch));

  // (3) Concurrent compression. Reloading the artifact bumps its
  // generation, so every burst below starts cold (no cached result).
  // Same key: N threads request one key — single-flight runs the DP once
  // and the burst costs ~1 cold DP, not N. Distinct keys: N threads
  // request N different bounds — N DPs run concurrently (wall-clock gain
  // needs multi-core hardware; on 1 vCPU expect ~serial time, the point
  // being that nothing serializes them besides the CPU).
  const int kBurst = 8;
  auto reload = [&] {
    Response r = service.Load(load);
    if (!r.ok()) std::printf("reload failed: %s\n", r.message.c_str());
  };
  struct BurstResult {
    double seconds = 0;
    uint64_t dedup = 0;
    uint64_t errors = 0;
  };
  auto burst = [&](bool same_key) {
    std::vector<std::thread> workers;
    std::atomic<uint64_t> dedup{0};
    std::atomic<uint64_t> errors{0};
    Timer t;
    for (int c = 0; c < kBurst; ++c) {
      workers.emplace_back([&, c] {
        CompressRequest req;
        req.artifact = "bench";
        req.bound = same_key ? bound : bound - static_cast<uint64_t>(c);
        Response resp = service.Compress(req);
        if (resp.dedup_hit) dedup.fetch_add(1);
        // A failed DP returns in microseconds; counting it as a timing
        // sample would silently understate the burst cost.
        if (!resp.ok()) errors.fetch_add(1);
      });
    }
    for (auto& w2 : workers) w2.join();
    return BurstResult{t.ElapsedSeconds(), dedup.load(), errors.load()};
  };

  reload();
  BurstResult same = burst(/*same_key=*/true);
  reload();
  BurstResult distinct = burst(/*same_key=*/false);

  std::printf("\n%-28s %14s %16s %10s\n", "concurrent compress (8 thr)",
              "total[s]", "vs cold DP", "dedup");
  for (const auto& [label, r] :
       {std::make_pair("same key (single-flight)", same),
        std::make_pair("distinct keys (8 DPs)", distinct)}) {
    std::printf("%-28s %14.5f %15.2fx %9llu%s\n", label, r.seconds,
                cold_s > 0 ? r.seconds / cold_s : 0.0,
                static_cast<unsigned long long>(r.dedup),
                r.errors > 0 ? " (errors!)" : "");
  }

  // (4) Event-loop front end: request latency over a real socket with 64
  // idle connections parked on the server. Under the old
  // thread-per-connection design those cost 64 blocked threads; the epoll
  // loop holds them as bare fds, so a foreground client's Info round trips
  // should be indistinguishable from an empty server (ratio ~1.0).
  {
    Server server(service, ServerOptions{});
    Status started = server.Start();
    if (!started.ok()) {
      std::printf("server start failed: %s\n", started.ToString().c_str());
    } else {
      const int kInfoRpcs = 200;
      auto rpc_batch = [&](const char* what) -> double {
        auto client = Client::Connect("127.0.0.1", server.port());
        if (!client.ok()) {
          std::printf("%s connect failed: %s\n", what,
                      client.status().ToString().c_str());
          return -1.0;
        }
        Timer t;
        for (int i = 0; i < kInfoRpcs; ++i) {
          auto resp = client->Info(InfoRequest{});
          if (!resp.ok()) {
            std::printf("%s rpc failed: %s\n", what,
                        resp.status().ToString().c_str());
            return -1.0;
          }
        }
        return t.ElapsedSeconds();
      };
      rpc_batch("warmup");  // First-connection and cache warmup.
      double alone_s = rpc_batch("alone");
      std::vector<Client> parked;
      for (int c = 0; c < 64; ++c) {
        auto idle = Client::Connect("127.0.0.1", server.port());
        if (!idle.ok()) {
          std::printf("idle connect %d failed: %s\n", c,
                      idle.status().ToString().c_str());
          break;
        }
        parked.push_back(std::move(*idle));
      }
      double parked_s = rpc_batch("with 64 idle conns");
      const double ratio =
          (alone_s > 0 && parked_s > 0) ? alone_s / parked_s : 0.0;
      std::printf("\n%-28s %14s %16s %10s\n",
                  "event loop (200 Info RPCs)", "total[s]", "rpc/s",
                  "vs alone");
      std::printf("%-28s %14.4f %16.0f %10s\n", "alone", alone_s,
                  alone_s > 0 ? kInfoRpcs / alone_s : 0.0, "1x");
      std::printf("%-28s %14.4f %16.0f %9.2fx\n", "with 64 idle conns",
                  parked_s, parked_s > 0 ? kInfoRpcs / parked_s : 0.0,
                  ratio);
      Server::TransportStats tstats = server.transport_stats();
      std::printf("transport: %llu active conns, %llu rejected, %llu "
                  "idle-reaped, %llu loop wakeups\n",
                  static_cast<unsigned long long>(tstats.active_connections),
                  static_cast<unsigned long long>(tstats.rejected_connections),
                  static_cast<unsigned long long>(tstats.idle_reaped),
                  static_cast<unsigned long long>(tstats.loop_wakeups));
      // Thresholded by tools/bench_smoke.sh on the baseline machine: idle
      // connections dragging foreground latency to a fraction of the lone
      // client means the event loop regressed (per-connection threads,
      // busy wakeups, or O(conns) scans crept back in).
      std::printf("SRVSTAT metric=concurrent_connections ratio=%.2f\n",
                  ratio);
      parked.clear();
      server.Shutdown();
      server.Wait();
    }
  }

  // (5) Per-algorithm cold compress through the registry, each at the same
  // (small forest, bound) instance — the comparable baseline future
  // algorithm PRs extend. Reloading between runs keeps every run cold.
  std::printf("\n%-28s %14s %10s %10s %10s\n", "cold compress (forest "
              "small)", "time[s]", "ML", "VL", "cache");
  for (const std::string& algo : algos) {
    reload();
    CompressRequest req;
    req.artifact = "bench";
    req.forest = "small";
    req.algo = algo;
    req.bound = small_bound;
    Timer t;
    Response resp = service.Compress(req);
    double s = t.ElapsedSeconds();
    if (!resp.ok()) {
      std::printf("%-28s %14.5f %32s\n", algo.c_str(), s,
                  ("error: " + resp.message).c_str());
      continue;
    }
    std::printf("%-28s %14.5f %10llu %10llu %10s\n", algo.c_str(), s,
                static_cast<unsigned long long>(resp.monomial_loss),
                static_cast<unsigned long long>(resp.variable_loss),
                resp.cache_hit ? "hit" : "miss");
  }
}

}  // namespace
}  // namespace provabs::bench

int main(int argc, char** argv) {
  provabs::bench::Run(provabs::bench::SelectedAlgos(
      argc, argv, provabs::CompressorRegistry::Default().Names()));
  return 0;
}
