/// Figure 9: compression time as a function of the bound B. The paper
/// computes the feasible range [max-compression, |P|_M] per workload and
/// sweeps it; the Opt VVS runtime is insensitive to B while the Greedy
/// runtime falls as B grows (it can stop early). Algorithms route through
/// the CompressorRegistry; pass `--algo NAME[,NAME...]` to sweep others
/// (e.g. `--algo opt,greedy,prox`).

#include <cstdio>
#include <string>
#include <vector>

#include "abstraction/loss.h"
#include "algo/compressor.h"
#include "bench/bench_util.h"
#include "common/timer.h"
#include "workload/tree_gen.h"

namespace provabs::bench {
namespace {

void Run(const std::vector<std::string>& algos) {
  PrintHeader("Figure 9: compression time vs bound B");
  std::printf("%-16s %12s %12s", "workload", "bound", "|P|_M");
  for (const std::string& algo : algos) {
    std::printf(" %10s", (algo + "[s]").c_str());
  }
  std::printf("\n");

  for (Workload& w : StandardWorkloads()) {
    AbstractionForest forest;
    forest.AddTree(BuildUniformTree(*w.vars, w.tree_leaves, {8}, "F9_"));

    // Feasible bound range: [|P|_M - ML(all roots), |P|_M].
    LossReport max_loss = ComputeLossNaive(
        w.polys, forest, ValidVariableSet::AllRoots(forest));
    const size_t size_m = w.polys.SizeM();
    const size_t min_bound = size_m - max_loss.monomial_loss;

    for (int step = 0; step <= 5; ++step) {
      size_t bound =
          min_bound + (size_m - min_bound) * static_cast<size_t>(step) / 5;
      if (bound == 0) bound = 1;

      std::printf("%-16s %12zu %12zu", w.name.c_str(), bound, size_m);
      for (const std::string& algo : algos) {
        const Compressor* compressor =
            CompressorRegistry::Default().Find(algo);
        CompressOptions options;
        options.bound = bound;
        Timer t;
        auto result = compressor->Compress(w.polys, forest, options);
        double s = t.ElapsedSeconds();
        // A '!' marks a run that returned an error (infeasible bound,
        // exhausted cut/oracle budget) — its time is not comparable.
        std::printf(" %10.4f%s", s, result.ok() ? "" : "!");
      }
      std::printf("\n");
    }
  }
}

}  // namespace
}  // namespace provabs::bench

int main(int argc, char** argv) {
  provabs::bench::Run(
      provabs::bench::SelectedAlgos(argc, argv, {"opt", "greedy"}));
  return 0;
}
