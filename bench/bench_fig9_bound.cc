/// Figure 9: compression time as a function of the bound B. The paper
/// computes the feasible range [max-compression, |P|_M] per workload and
/// sweeps it; the Opt VVS runtime is insensitive to B while the Greedy
/// runtime falls as B grows (it can stop early).

#include <cstdio>

#include "abstraction/loss.h"
#include "algo/greedy_multi_tree.h"
#include "algo/optimal_single_tree.h"
#include "bench/bench_util.h"
#include "common/timer.h"
#include "workload/tree_gen.h"

namespace provabs::bench {
namespace {

void Run() {
  PrintHeader("Figure 9: compression time vs bound B");
  std::printf("%-16s %12s %12s %10s %10s\n", "workload", "bound", "|P|_M",
              "opt[s]", "greedy[s]");

  for (Workload& w : StandardWorkloads()) {
    AbstractionForest forest;
    forest.AddTree(BuildUniformTree(*w.vars, w.tree_leaves, {8}, "F9_"));

    // Feasible bound range: [|P|_M - ML(all roots), |P|_M].
    LossReport max_loss = ComputeLossNaive(
        w.polys, forest, ValidVariableSet::AllRoots(forest));
    const size_t size_m = w.polys.SizeM();
    const size_t min_bound = size_m - max_loss.monomial_loss;

    for (int step = 0; step <= 5; ++step) {
      size_t bound =
          min_bound + (size_m - min_bound) * static_cast<size_t>(step) / 5;
      if (bound == 0) bound = 1;

      Timer t_opt;
      auto opt = OptimalSingleTree(w.polys, forest, 0, bound);
      double opt_s = t_opt.ElapsedSeconds();
      (void)opt;

      Timer t_greedy;
      auto greedy = GreedyMultiTree(w.polys, forest, bound);
      double greedy_s = t_greedy.ElapsedSeconds();
      (void)greedy;

      std::printf("%-16s %12zu %12zu %10.4f %10.4f\n", w.name.c_str(),
                  bound, size_m, opt_s, greedy_s);
    }
  }
}

}  // namespace
}  // namespace provabs::bench

int main() {
  provabs::bench::Run();
  return 0;
}
