/// Ablation: the greedy algorithm's tie-breaking rule. The paper's
/// pseudocode selects the candidate with minimal variable loss, "ties
/// broken arbitrarily", but its Example 15 prefers the tied candidate with
/// the larger monomial-loss gain (q1 over SB). This bench quantifies the
/// trade: ML tie-breaking costs extra EvaluateMergeGain calls per
/// iteration but can stop earlier with fewer merges.

#include <cstdio>

#include "algo/greedy_multi_tree.h"
#include "bench/bench_util.h"
#include "common/timer.h"
#include "workload/tree_gen.h"

namespace provabs::bench {
namespace {

void Run() {
  PrintHeader("Ablation: greedy tie-break on monomial gain");
  std::printf("%-16s %10s %8s %8s %10s %10s\n", "workload", "bound",
              "VL(ml)", "VL(arb)", "t_ml[s]", "t_arb[s]");

  for (Workload& w : StandardWorkloads()) {
    AbstractionForest forest;
    forest.AddTree(BuildUniformTree(*w.vars, w.tree_leaves, {4, 4}, "GT_"));
    forest.AddTree(BuildUniformTree(*w.vars, w.other_leaves,
                                    {std::min<uint32_t>(
                                        4, static_cast<uint32_t>(
                                               w.other_leaves.size()))},
                                    "GT2_"));
    const size_t bound = FeasibleBound(w.polys, forest, 0.5);

    GreedyOptions with_ml;
    with_ml.tie_break_on_ml = true;
    Timer t_ml;
    auto r_ml = GreedyMultiTree(w.polys, forest, bound, with_ml);
    double ml_s = t_ml.ElapsedSeconds();

    GreedyOptions arbitrary;
    arbitrary.tie_break_on_ml = false;
    Timer t_arb;
    auto r_arb = GreedyMultiTree(w.polys, forest, bound, arbitrary);
    double arb_s = t_arb.ElapsedSeconds();

    if (!r_ml.ok() || !r_arb.ok()) continue;
    std::printf("%-16s %10zu %8zu %8zu %10.4f %10.4f\n", w.name.c_str(),
                bound, r_ml->loss.variable_loss, r_arb->loss.variable_loss,
                ml_s, arb_s);
  }
}

}  // namespace
}  // namespace provabs::bench

int main() {
  provabs::bench::Run();
  return 0;
}
