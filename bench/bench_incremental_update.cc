/// Extension bench: the delta-aware update path. A localized `Add` on the
/// standard workloads must skip the full DP — OptimalRecompress folds the
/// appended monomials into the retained residual index and recomputes only
/// the DP arrays along the dirty leaf→root paths, so the patched latency
/// should sit well below a cold full-DP run over the grown set.
///
/// The driver doubles as the differential's last line of defense: the
/// patched result is cross-checked against a cold run on every workload
/// (loss fields, chosen cut, and the serialized bytes of the compressed
/// artifact), and ANY divergence makes the process exit nonzero — failing
/// tools/bench_smoke.sh on every machine, not just the baseline one.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "algo/optimal_single_tree.h"
#include "bench/bench_util.h"
#include "common/timer.h"
#include "io/serializer.h"

namespace provabs::bench {
namespace {

std::vector<NodeRef> SortedNodes(const ValidVariableSet& vvs) {
  std::vector<NodeRef> nodes = vvs.nodes();
  std::sort(nodes.begin(), nodes.end());
  return nodes;
}

/// Leaves the chosen cut keeps as themselves — the only append targets the
/// frontier test accepts (an append strictly below a chosen internal node
/// lands in the abstracted interior and must decline with crosses_cut).
std::vector<VariableId> KeptLeaves(const AbstractionForest& forest,
                                   const ValidVariableSet& vvs) {
  std::vector<VariableId> kept;
  for (const NodeRef& ref : vvs.nodes()) {
    const AbstractionTree::Node& node = forest.tree(ref.tree).node(ref.node);
    if (node.is_leaf()) kept.push_back(node.label);
  }
  return kept;
}

/// A localized update: a few monomials all touching ONE kept leaf, the
/// server-side `append` verb's typical shape. Locality is what the patch
/// path monetizes — every distinct dirtied leaf adds a leaf→root path of
/// array recomputes, so an append spraying across the tree converges on
/// full-DP cost while a single-leaf add leaves all sibling subtrees' work
/// reused as-is.
Polynomial LocalizedAppend(VariableId kept_leaf) {
  std::vector<Monomial> terms;
  for (size_t i = 0; i < 4; ++i) {
    terms.emplace_back(1.5 + 0.25 * static_cast<double>(i),
                       std::vector<Factor>{{kept_leaf, 1}});
  }
  return Polynomial::FromMonomials(std::move(terms));
}

struct WorkloadRun {
  bool configured = false;  ///< A patchable (bound, append) pair was found.
  bool diverged = false;
  double patched_s = 0;
  double full_s = 0;
  size_t bound = 0;
  uint64_t monomial_loss = 0;
  uint64_t variable_loss = 0;
};

WorkloadRun RunWorkload(const Workload& w) {
  WorkloadRun run;
  AbstractionForest forest;
  forest.AddTree(BuildUniformTree(*w.vars, w.tree_leaves, {4, 4}, "INC_"));

  // Bound search, tightest first: a tight bound makes the cold DP carry a
  // large k and shows the patch at its best, but may abstract every leaf
  // (no patch target); SizeM−8 always keeps leaves chosen and is always
  // feasible (the identity cut has zero loss).
  std::vector<size_t> candidates = {FeasibleBound(w.polys, forest, 0.5),
                                    FeasibleBound(w.polys, forest, 0.25)};
  if (w.polys.SizeM() > 8) candidates.push_back(w.polys.SizeM() - 8);

  for (size_t bound : candidates) {
    PolynomialSet polys = w.polys;
    auto base = OptimalSingleTree(polys, forest, 0, bound);
    if (!base.ok() || base->dp_state == nullptr) continue;
    std::vector<VariableId> kept = KeptLeaves(forest, base->vvs);
    if (kept.empty()) continue;

    const uint64_t from_revision = polys.revision();
    polys.Add(LocalizedAppend(kept.front()));
    PolynomialSetDelta delta = polys.DeltaSince(from_revision);

    RecompressFallback fallback = RecompressFallback::kNone;
    auto patched =
        OptimalRecompress(polys, forest, *base, delta, bound, &fallback);
    if (!patched.ok()) {
      std::printf("  (bound %zu declined: %s)\n", bound,
                  RecompressFallbackName(fallback));
      continue;
    }

    // Timing. OptimalRecompress is pure in its arguments, so repeated runs
    // measure the same patch; min-of-N sheds scheduler noise.
    constexpr int kPatchedReps = 11;
    constexpr int kFullReps = 5;
    run.patched_s = 1e30;
    for (int i = 0; i < kPatchedReps; ++i) {
      Timer t;
      auto r = OptimalRecompress(polys, forest, *base, delta, bound);
      run.patched_s = std::min(run.patched_s, t.ElapsedSeconds());
      if (!r.ok()) run.diverged = true;  // Accepted once must accept again.
    }
    Timer t_full;
    auto full = OptimalSingleTree(polys, forest, 0, bound);
    run.full_s = t_full.ElapsedSeconds();
    for (int i = 1; i < kFullReps; ++i) {
      Timer t;
      auto again = OptimalSingleTree(polys, forest, 0, bound);
      run.full_s = std::min(run.full_s, t.ElapsedSeconds());
      (void)again;
    }

    // Differential: field-equal and byte-identical, or the bench fails.
    if (!full.ok()) {
      std::printf("  DIVERGENCE: patch accepted but full DP failed: %s\n",
                  full.status().ToString().c_str());
      run.diverged = true;
    } else if (patched->loss.monomial_loss != full->loss.monomial_loss ||
               patched->loss.variable_loss != full->loss.variable_loss ||
               patched->adequate != full->adequate ||
               SortedNodes(patched->vvs) != SortedNodes(full->vvs)) {
      std::printf("  DIVERGENCE: patched ML=%llu VL=%llu vs full ML=%llu "
                  "VL=%llu\n",
                  static_cast<unsigned long long>(patched->loss.monomial_loss),
                  static_cast<unsigned long long>(patched->loss.variable_loss),
                  static_cast<unsigned long long>(full->loss.monomial_loss),
                  static_cast<unsigned long long>(full->loss.variable_loss));
      run.diverged = true;
    } else if (SerializePolynomialSet(patched->Apply(forest, polys),
                                      *w.vars) !=
               SerializePolynomialSet(full->Apply(forest, polys), *w.vars)) {
      std::printf("  DIVERGENCE: compressed artifacts serialize "
                  "differently\n");
      run.diverged = true;
    }

    run.configured = true;
    run.bound = bound;
    run.monomial_loss = patched->loss.monomial_loss;
    run.variable_loss = patched->loss.variable_loss;
    return run;
  }
  return run;
}

int Run() {
  PrintHeader("Incremental update: patched recompress vs cold full DP");
  std::printf("%-18s %10s %12s %12s %10s %8s %8s\n", "workload", "bound",
              "full[s]", "patched[s]", "speedup", "ML", "VL");

  bool diverged = false;
  size_t patched_count = 0;
  double min_ratio = 1e30;
  for (const Workload& w : StandardWorkloads()) {
    WorkloadRun run = RunWorkload(w);
    diverged = diverged || run.diverged;
    if (!run.configured) {
      std::printf("%-18s %52s\n", w.name.c_str(),
                  "(no patchable configuration)");
      continue;
    }
    ++patched_count;
    const double ratio =
        run.patched_s > 0 ? run.full_s / run.patched_s : 0.0;
    min_ratio = std::min(min_ratio, ratio);
    std::printf("%-18s %10zu %12.6f %12.6f %9.1fx %8llu %8llu\n",
                w.name.c_str(), run.bound, run.full_s, run.patched_s, ratio,
                static_cast<unsigned long long>(run.monomial_loss),
                static_cast<unsigned long long>(run.variable_loss));
  }

  // Machine-keyed stat line for tools/bench_smoke.sh: on the baseline
  // machine the worst per-workload ratio is thresholded at 2x — a patched
  // re-run that fails to clearly beat the cold DP means the patch path
  // regressed into re-deriving what the retained tables already hold.
  std::printf("MACHINEKEY cpu=%s\n", CpuModel().c_str());
  std::printf("PATCHSTAT metric=patched_vs_full ratio=%.2f\n",
              patched_count > 0 ? min_ratio : 0.0);

  if (diverged) {
    std::printf("FAILED: incremental/full divergence detected\n");
    return 1;
  }
  if (patched_count == 0) {
    std::printf("FAILED: no workload took the patch path\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace provabs::bench

int main() { return provabs::bench::Run(); }
