/// Ablation (§4.1 "Efficient ML computation"): computing the per-node
/// monomial loss by naive re-substitution (one polynomial traversal per
/// tree node) vs. the single-pass LeafResidualIndex. The index turns an
/// O(nodes · |P|_M) scheme into O(|P|_M + Σ_v leaves(v)) and is the reason
/// Algorithm 1 scales to the paper's workloads.

#include <benchmark/benchmark.h>

#include "abstraction/loss.h"
#include "bench/bench_util.h"
#include "workload/tree_gen.h"

namespace provabs::bench {
namespace {

struct Setup {
  Workload workload;
  AbstractionForest forest;

  Setup() : workload(MakeTelephonyWorkload(0.25)) {
    forest.AddTree(BuildUniformTree(*workload.vars, workload.tree_leaves,
                                    {4, 4}, "AB_"));
  }
};

Setup& GetSetup() {
  static Setup* setup = new Setup();
  return *setup;
}

void BM_NaivePerNodeML(benchmark::State& state) {
  Setup& s = GetSetup();
  const AbstractionTree& tree = s.forest.tree(0);
  for (auto _ : state) {
    size_t total = 0;
    for (NodeIndex v = 0; v < tree.node_count(); ++v) {
      if (tree.node(v).is_leaf()) continue;
      // Cut = {v} plus every leaf outside v's subtree; full re-application.
      ValidVariableSet vvs;
      vvs.Add(NodeRef{0, v});
      const auto& node = tree.node(v);
      for (uint32_t i = 0; i < tree.leaves().size(); ++i) {
        if (i >= node.leaf_begin && i < node.leaf_end) continue;
        vvs.Add(NodeRef{0, tree.leaves()[i]});
      }
      total += ComputeLossNaive(s.workload.polys, s.forest, vvs)
                   .monomial_loss;
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_NaivePerNodeML)->Unit(benchmark::kMillisecond);

void BM_ResidualIndexML(benchmark::State& state) {
  Setup& s = GetSetup();
  const AbstractionTree& tree = s.forest.tree(0);
  for (auto _ : state) {
    LeafResidualIndex index(s.workload.polys, tree);
    size_t total = 0;
    for (NodeIndex v = 0; v < tree.node_count(); ++v) {
      if (tree.node(v).is_leaf()) continue;
      total += index.NodeLoss(v).monomial_loss;
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_ResidualIndexML)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace provabs::bench

BENCHMARK_MAIN();
