/// Evaluation-kernel comparison: the scenario-evaluation hot path (the
/// operation Fig. 10's speedups are measured over) run three ways on the
/// standard workloads —
///   naive     : per-polynomial Valuation::Evaluate (pointer-chased nested
///               vectors, one hash probe per factor),
///   compiled  : CompiledPolynomialSet CSR arrays + DenseValuation (flat
///               sequential walks, one hash probe per distinct variable
///               per scenario),
///   parallel  : the compiled kernel chunked across a ThreadPool
///               (ParallelEvaluateAll).
/// All three produce bitwise-identical values (asserted per scenario); the
/// driver exits nonzero on any mismatch, so the bench smoke CI step doubles
/// as an end-to-end equivalence check. Compile cost is reported separately:
/// it is paid once per artifact and amortized over every scenario.

#include <cstdio>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "core/compiled_polynomial_set.h"
#include "core/valuation.h"
#include "parallel/parallel_compress.h"
#include "parallel/thread_pool.h"

namespace provabs::bench {
namespace {

constexpr int kScenarios = 40;

bool BitwiseEqual(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  return a.empty() ||
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

/// One scenario per seed, assigning both parameter families (plans+months /
/// suppliers+parts) — the Fig. 10 interaction pattern.
Valuation MakeScenario(const Workload& w, uint64_t seed) {
  Rng rng(seed);
  Valuation val;
  for (VariableId v : w.tree_leaves) val.Set(v, rng.UniformReal(0.5, 1.5));
  for (VariableId v : w.other_leaves) val.Set(v, rng.UniformReal(0.5, 1.5));
  return val;
}

bool Run() {
  PrintHeader("Evaluate kernel: naive vs compiled vs compiled+parallel");
  const size_t threads = std::thread::hardware_concurrency();
  ThreadPool pool(threads);
  std::printf("scenarios per workload: %d; pool threads: %zu\n", kScenarios,
              threads);
  std::printf("%-16s %7s %10s %12s %11s %11s %11s %9s %9s\n", "workload",
              "polys", "monomials", "compile[ms]", "naive[s]", "compiled[s]",
              "parallel[s]", "speedup", "par-spdup");

  bool all_equal = true;
  for (Workload& w : StandardWorkloads()) {
    // Compile once (cached on the set afterwards — the artifact-resident
    // situation the server maintains).
    Timer compile_timer;
    std::shared_ptr<const CompiledPolynomialSet> compiled = w.polys.Compiled();
    const double compile_ms = compile_timer.ElapsedMillis();

    double t_naive = 0, t_compiled = 0, t_parallel = 0;
    for (int s = 0; s < kScenarios; ++s) {
      const Valuation val = MakeScenario(w, 9000 + s);

      Timer t1;
      std::vector<double> naive;
      naive.reserve(w.polys.count());
      for (const Polynomial& p : w.polys.polynomials()) {
        naive.push_back(val.Evaluate(p));
      }
      t_naive += t1.ElapsedSeconds();

      Timer t2;
      const DenseValuation dense = compiled->MaterializeValuation(val);
      std::vector<double> fast = compiled->EvaluateAll(dense);
      t_compiled += t2.ElapsedSeconds();

      Timer t3;
      std::vector<double> par = ParallelEvaluateAll(val, w.polys, pool);
      t_parallel += t3.ElapsedSeconds();

      if (!BitwiseEqual(naive, fast) || !BitwiseEqual(naive, par)) {
        std::printf("MISMATCH in %s scenario %d\n", w.name.c_str(), s);
        all_equal = false;
      }
    }

    std::printf("%-16s %7zu %10zu %12.3f %11.5f %11.5f %11.5f %8.2fx %8.2fx\n",
                w.name.c_str(), w.polys.count(), w.polys.SizeM(), compile_ms,
                t_naive, t_compiled, t_parallel,
                t_compiled > 0 ? t_naive / t_compiled : 0.0,
                t_parallel > 0 ? t_naive / t_parallel : 0.0);
  }
  if (all_equal) {
    std::printf("all arms bitwise identical across %d scenarios/workload\n",
                kScenarios);
  }
  return all_equal;
}

}  // namespace
}  // namespace provabs::bench

int main() { return provabs::bench::Run() ? 0 : 1; }
