/// Evaluation-kernel comparison: the scenario-evaluation hot path (the
/// operation Fig. 10's speedups are measured over) run three ways on the
/// standard workloads —
///   naive     : per-polynomial Valuation::Evaluate (pointer-chased nested
///               vectors, one hash probe per factor),
///   compiled  : CompiledPolynomialSet CSR arrays + DenseValuation (flat
///               sequential walks, one hash probe per distinct variable
///               per scenario),
///   parallel  : the compiled kernel chunked across a ThreadPool
///               (ParallelEvaluateAll).
/// All three produce bitwise-identical values (asserted per scenario); the
/// driver exits nonzero on any mismatch, so the bench smoke CI step doubles
/// as an end-to-end equivalence check. Compile cost is reported separately:
/// it is paid once per artifact and amortized over every scenario.
///
/// A second, batched arm then runs the WHOLE scenario batch through every
/// registered evaluation backend (core/evaluation_backend.h) in one
/// EvaluateBatch call, asserts bitwise identity against the naive results,
/// and reports each backend's throughput ratio over the single-scenario
/// compiled loop as machine-parsable lines:
///
///   BATCHSTAT workload=<w> backend=<name> batch=<n> seconds=<t> ratio=<r>
///
/// tools/bench_smoke.sh thresholds the simd_batch ratio against the value
/// recorded in BENCH_evaluate.json when it runs on the recorded machine.
///
/// A third, jit arm re-runs the SINGLE-scenario sweep through the "jit"
/// backend (one EvaluateBatch of batch 1 per scenario — the shape
/// Valuation::EvaluateAll routes), bit-checked like the others, reporting
///
///   JITSTAT workload=<w> mode=native|fallback emit_ms=<ms> seconds=<t>
///           ratio=<r>
///
/// where ratio is over the same compiled-loop denominator and emit_ms is
/// the one-time code-emission cost (paid once per artifact, amortized like
/// compile cost). bench_smoke.sh thresholds mode=native lines only, so
/// NOJIT-forced or exec-restricted hosts skip cleanly.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "core/compiled_polynomial_set.h"
#include "core/evaluation_backend.h"
#include "core/valuation.h"
#include "jit/jit_backend.h"
#include "parallel/parallel_compress.h"
#include "parallel/thread_pool.h"

namespace provabs::bench {
namespace {

constexpr int kScenarios = 40;

bool BitwiseEqual(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  return a.empty() ||
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

/// One scenario per seed, assigning both parameter families (plans+months /
/// suppliers+parts) — the Fig. 10 interaction pattern.
Valuation MakeScenario(const Workload& w, uint64_t seed) {
  Rng rng(seed);
  Valuation val;
  for (VariableId v : w.tree_leaves) val.Set(v, rng.UniformReal(0.5, 1.5));
  for (VariableId v : w.other_leaves) val.Set(v, rng.UniformReal(0.5, 1.5));
  return val;
}

/// The batched arm: the whole scenario batch through each registered
/// backend in single EvaluateBatch calls, bit-checked against the naive
/// results. `t_compiled` is the accumulated single-scenario compiled-loop
/// time over the same scenarios (the ratio's denominator is that loop).
bool RunBatchedArm(const Workload& w,
                   const CompiledPolynomialSet& compiled,
                   const std::vector<Valuation>& scenarios,
                   const std::vector<std::vector<double>>& naive_results,
                   double t_compiled) {
  const size_t n = scenarios.size();
  const size_t poly_count = compiled.poly_count();
  std::vector<DenseValuation> dense;
  dense.reserve(n);
  for (const Valuation& val : scenarios) {
    dense.push_back(compiled.MaterializeValuation(val));
  }
  std::vector<const DenseValuation*> dense_ptrs(n);
  for (size_t s = 0; s < n; ++s) dense_ptrs[s] = &dense[s];
  std::vector<std::vector<double>> out(n, std::vector<double>(poly_count));
  std::vector<double*> out_ptrs(n);
  for (size_t s = 0; s < n; ++s) out_ptrs[s] = out[s].data();

  bool all_equal = true;
  constexpr int kReps = 5;
  const EvaluationBackendRegistry& registry =
      EvaluationBackendRegistry::Default();
  for (const std::string& name : registry.Names()) {
    const EvaluationBackend* backend = registry.Find(name);
    Timer timer;
    for (int rep = 0; rep < kReps; ++rep) {
      Status status = backend->EvaluateBatch(
          compiled, 0, poly_count, dense_ptrs.data(), out_ptrs.data(), n);
      if (!status.ok()) {
        std::printf("BATCH ERROR %s/%s: %s\n", w.name.c_str(), name.c_str(),
                    status.ToString().c_str());
        return false;
      }
    }
    const double seconds = timer.ElapsedSeconds() / kReps;
    for (size_t s = 0; s < n; ++s) {
      if (!BitwiseEqual(naive_results[s], out[s])) {
        std::printf("BATCH MISMATCH in %s backend=%s scenario %zu\n",
                    w.name.c_str(), name.c_str(), s);
        all_equal = false;
      }
    }
    std::printf(
        "BATCHSTAT workload=%s backend=%s batch=%zu seconds=%.6f "
        "ratio=%.2f\n",
        w.name.c_str(), name.c_str(), n, seconds,
        seconds > 0 ? t_compiled / seconds : 0.0);
  }
  return all_equal;
}

/// The jit arm: the single-scenario sweep through the "jit" backend, one
/// batch-of-1 EvaluateBatch per scenario, bit-checked against naive. A
/// local backend instance (sharing the process-wide code cache) exposes
/// the native/fallback decision through its stats.
bool RunJitArm(const Workload& w, const CompiledPolynomialSet& compiled,
               const std::vector<Valuation>& scenarios,
               const std::vector<std::vector<double>>& naive_results,
               double t_compiled) {
  const size_t poly_count = compiled.poly_count();
  const size_t n = scenarios.size();
  std::vector<DenseValuation> dense;
  dense.reserve(n);
  for (const Valuation& val : scenarios) {
    dense.push_back(compiled.MaterializeValuation(val));
  }
  JitBackend jit;
  std::vector<double> out(poly_count);

  // The first batch pays the one-time emission (a cache miss unless the
  // registered backend already served this artifact); report it apart so
  // the steady-state ratio reflects the amortized serving cost.
  Timer emit_timer;
  {
    const DenseValuation* scenario = &dense[0];
    double* out_ptr = out.data();
    Status status = jit.EvaluateBatch(compiled, 0, poly_count, &scenario,
                                      &out_ptr, 1);
    if (!status.ok()) {
      std::printf("JIT ERROR %s: %s\n", w.name.c_str(),
                  status.ToString().c_str());
      return false;
    }
  }
  const double emit_ms = emit_timer.ElapsedMillis();

  bool all_equal = true;
  constexpr int kReps = 5;
  Timer timer;
  for (int rep = 0; rep < kReps; ++rep) {
    for (size_t s = 0; s < n; ++s) {
      const DenseValuation* scenario = &dense[s];
      double* out_ptr = out.data();
      Status status = jit.EvaluateBatch(compiled, 0, poly_count, &scenario,
                                        &out_ptr, 1);
      if (!status.ok()) {
        std::printf("JIT ERROR %s: %s\n", w.name.c_str(),
                    status.ToString().c_str());
        return false;
      }
      if (rep == 0 && !BitwiseEqual(naive_results[s], out)) {
        std::printf("JIT MISMATCH in %s scenario %zu\n", w.name.c_str(), s);
        all_equal = false;
      }
    }
  }
  const double seconds = timer.ElapsedSeconds() / kReps;

  const JitBackend::Stats stats = jit.stats();
  const bool native = stats.native_batches > 0 && stats.fallback_forced == 0 &&
                      stats.fallback_no_exec_mem == 0 &&
                      stats.fallback_emit_failed == 0;
  std::printf(
      "JITSTAT workload=%s mode=%s emit_ms=%.3f seconds=%.6f ratio=%.2f\n",
      w.name.c_str(), native ? "native" : "fallback", emit_ms, seconds,
      seconds > 0 ? t_compiled / seconds : 0.0);
  return all_equal;
}

bool Run() {
  PrintHeader("Evaluate kernel: naive vs compiled vs compiled+parallel");
  const size_t threads = std::thread::hardware_concurrency();
  ThreadPool pool(threads);
  std::printf("scenarios per workload: %d; pool threads: %zu\n", kScenarios,
              threads);
  std::printf("MACHINEKEY cpu=%s\n", CpuModel().c_str());
  std::printf("SIMDLANES %s\n", SimdBatchAvx2Active() ? "avx2" : "scalar");
  std::printf("%-16s %7s %10s %12s %11s %11s %11s %9s %9s\n", "workload",
              "polys", "monomials", "compile[ms]", "naive[s]", "compiled[s]",
              "parallel[s]", "speedup", "par-spdup");

  bool all_equal = true;
  for (Workload& w : StandardWorkloads()) {
    // Compile once (cached on the set afterwards — the artifact-resident
    // situation the server maintains).
    Timer compile_timer;
    std::shared_ptr<const CompiledPolynomialSet> compiled = w.polys.Compiled();
    const double compile_ms = compile_timer.ElapsedMillis();

    double t_naive = 0, t_compiled = 0, t_parallel = 0;
    std::vector<Valuation> scenarios;
    std::vector<std::vector<double>> naive_results;
    scenarios.reserve(kScenarios);
    naive_results.reserve(kScenarios);
    for (int s = 0; s < kScenarios; ++s) {
      const Valuation val = MakeScenario(w, 9000 + s);

      Timer t1;
      std::vector<double> naive;
      naive.reserve(w.polys.count());
      for (const Polynomial& p : w.polys.polynomials()) {
        naive.push_back(val.Evaluate(p));
      }
      t_naive += t1.ElapsedSeconds();

      Timer t2;
      const DenseValuation dense = compiled->MaterializeValuation(val);
      std::vector<double> fast = compiled->EvaluateAll(dense);
      t_compiled += t2.ElapsedSeconds();

      Timer t3;
      std::vector<double> par = ParallelEvaluateAll(val, w.polys, pool);
      t_parallel += t3.ElapsedSeconds();

      if (!BitwiseEqual(naive, fast) || !BitwiseEqual(naive, par)) {
        std::printf("MISMATCH in %s scenario %d\n", w.name.c_str(), s);
        all_equal = false;
      }
      scenarios.push_back(val);
      naive_results.push_back(std::move(naive));
    }

    std::printf("%-16s %7zu %10zu %12.3f %11.5f %11.5f %11.5f %8.2fx %8.2fx\n",
                w.name.c_str(), w.polys.count(), w.polys.SizeM(), compile_ms,
                t_naive, t_compiled, t_parallel,
                t_compiled > 0 ? t_naive / t_compiled : 0.0,
                t_parallel > 0 ? t_naive / t_parallel : 0.0);

    if (!RunJitArm(w, *compiled, scenarios, naive_results, t_compiled)) {
      all_equal = false;
    }
    if (!RunBatchedArm(w, *compiled, scenarios, naive_results, t_compiled)) {
      all_equal = false;
    }
  }
  if (all_equal) {
    std::printf("all arms bitwise identical across %d scenarios/workload\n",
                kScenarios);
  }
  return all_equal;
}

}  // namespace
}  // namespace provabs::bench

int main() { return provabs::bench::Run() ? 0 : 1; }
