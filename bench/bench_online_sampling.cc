/// Extension bench (§6): quality and cost of the online sampling pipeline
/// as a function of the sample rate, on the telephony workload. Reports
/// the size-extrapolation error, whether the sample-chosen VVS met the
/// full-data bound, and the end-to-end time against the offline route.

#include <cstdio>

#include "algo/optimal_single_tree.h"
#include "bench/bench_util.h"
#include "common/timer.h"
#include "online/online_compressor.h"
#include "workload/telephony.h"
#include "workload/tree_gen.h"

namespace provabs::bench {
namespace {

void Run() {
  PrintHeader("Online sampling (§6): quality vs sample rate");
  std::printf("%8s %12s %12s %10s %8s %10s %10s\n", "rate", "est_size",
              "true_size", "result_M", "met", "online[s]", "offline[s]");

  TelephonyConfig config;
  config.num_customers =
      static_cast<size_t>(4000 * BenchScale());
  config.num_plans = 128;
  config.num_months = 12;
  config.num_zip_codes = 40;
  Rng rng(config.seed);
  VariableTable vars;
  TelephonyVars tv = MakeTelephonyVars(vars, config);
  Database db = GenerateTelephony(config, rng);

  AbstractionForest forest;
  forest.AddTree(BuildUniformTree(vars, tv.plan_vars, {8}, "OS_"));
  ProvenanceQuery query = [&](const Database& d) {
    return RunTelephonyQuery(d, tv);
  };

  Timer t_offline;
  PolynomialSet full = query(db);
  const size_t bound = full.SizeM() / 3;
  auto offline = OptimalSingleTree(full, forest, 0, bound);
  double offline_s = t_offline.ElapsedSeconds();
  (void)offline;

  for (double rate : {0.01, 0.02, 0.05, 0.1, 0.2}) {
    OnlineOptions options;
    options.sample_rates = {rate / 4, rate / 2, rate};
    options.sampled_tables = {"Calls"};
    Timer t_online;
    auto online = CompressOnline(db, query, forest, bound, options);
    double online_s = t_online.ElapsedSeconds();
    if (!online.ok()) {
      std::printf("%8.3f %s\n", rate, online.status().ToString().c_str());
      continue;
    }
    std::printf("%8.3f %12zu %12zu %10zu %8s %10.3f %10.3f\n", rate,
                online->estimated_full_size_m, online->actual_full_size_m,
                online->compressed.SizeM(), online->met_bound ? "yes" : "no",
                online_s, offline_s);
  }
}

}  // namespace
}  // namespace provabs::bench

int main() {
  provabs::bench::Run();
  return 0;
}
