/// Extension bench: multi-core scaling of the compression/evaluation
/// primitives (the paper's offline deployment runs on strong hardware
/// [24]). Sweeps the thread count for the registry-routed compression
/// (default: brute force, the one with a parallel implementation) and the
/// scenario-batch evaluation; serial equivalents included as the baseline.
/// `--algo NAME[,NAME...]` selects other registered algorithms — those
/// without a parallel variant run their serial implementation on every
/// thread count, making the flat line visible rather than implied.

#include <cstdio>
#include <string>
#include <vector>

#include "algo/compressor.h"
#include "bench/bench_util.h"
#include "common/timer.h"
#include "core/valuation.h"
#include "parallel/parallel_compress.h"
#include "parallel/thread_pool.h"
#include "workload/tree_gen.h"

namespace provabs::bench {
namespace {

void Run(const std::vector<std::string>& algos) {
  PrintHeader("Parallel scaling: registry compression and scenario "
              "evaluation");

  Workload w = MakeTelephonyWorkload(0.5 * BenchScale());
  AbstractionForest forest;
  forest.AddTree(BuildUniformTree(*w.vars, w.tree_leaves, {2, 2}, "PSC_"));
  const size_t bound = FeasibleBound(w.polys, forest, 0.5);

  std::printf("%-24s %10s %12s\n", "primitive", "threads", "time[s]");
  for (const std::string& algo : algos) {
    const Compressor* compressor = CompressorRegistry::Default().Find(algo);
    CompressOptions options;
    options.bound = bound;
    Timer t_serial;
    auto serial = compressor->Compress(w.polys, forest, options);
    double serial_s = t_serial.ElapsedSeconds();
    std::printf("%-24s %10s %12.4f%s\n", algo.c_str(), "serial", serial_s,
                serial.ok() ? "" : " (error)");

    for (size_t threads : {1u, 2u, 4u, 8u}) {
      ThreadPool pool(threads);
      Timer t;
      auto parallel = ParallelCompress(w.polys, forest, algo, options, pool);
      (void)parallel;
      std::printf("%-24s %10zu %12.4f\n", algo.c_str(), threads,
                  t.ElapsedSeconds());
    }
  }

  // Scenario batch evaluation.
  Valuation val;
  for (VariableId v : w.tree_leaves) val.Set(v, 0.9);
  Timer t_eval;
  auto serial_answers = val.EvaluateAll(w.polys);
  double eval_serial_s = t_eval.ElapsedSeconds();
  std::printf("%-24s %10s %12.4f\n", "evaluate-all", "serial",
              eval_serial_s);
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    Timer t;
    auto answers = ParallelEvaluateAll(val, w.polys, pool);
    (void)answers;
    std::printf("%-24s %10zu %12.4f\n", "evaluate-all", threads,
                t.ElapsedSeconds());
  }
  (void)serial_answers;
}

}  // namespace
}  // namespace provabs::bench

int main(int argc, char** argv) {
  provabs::bench::Run(provabs::bench::SelectedAlgos(argc, argv, {"brute"}));
  return 0;
}
