/// Figure 12: compression time of Opt VVS (Algorithm 1) vs the Prox
/// competitor (the oracle-guided summarization of Ainy et al. [3]) as a
/// function of the bound, on TPC-H Q1 and Q5. The paper reports Prox
/// converging only on Q1/Q5 (24h+ timeouts elsewhere) and its runtime
/// growing steeply as the bound decreases.

#include <cstdio>

#include "abstraction/loss.h"
#include "algo/optimal_single_tree.h"
#include "algo/prox_summarizer.h"
#include "bench/bench_util.h"
#include "common/timer.h"
#include "workload/tree_gen.h"

namespace provabs::bench {
namespace {

void Run() {
  PrintHeader("Figure 12: Opt vs Prox compression time vs bound");
  std::printf("%-16s %12s %10s %10s %14s\n", "workload", "bound", "opt[s]",
              "prox[s]", "prox_oracle");

  std::vector<Workload> workloads;
  workloads.push_back(MakeTpchWorkload(TpchQuery::kQ5, "tpch-q5"));
  workloads.push_back(MakeTpchWorkload(TpchQuery::kQ1, "tpch-q1"));

  for (Workload& w : workloads) {
    AbstractionForest forest;
    forest.AddTree(BuildUniformTree(*w.vars, w.tree_leaves, {8}, "F12_"));

    LossReport max_loss = ComputeLossNaive(
        w.polys, forest, ValidVariableSet::AllRoots(forest));
    const size_t size_m = w.polys.SizeM();
    const size_t min_bound = size_m - max_loss.monomial_loss;

    for (int step = 0; step <= 4; ++step) {
      size_t bound =
          min_bound + (size_m - min_bound) * static_cast<size_t>(step) / 5;
      if (bound == 0) bound = 1;

      Timer t_opt;
      auto opt = OptimalSingleTree(w.polys, forest, 0, bound);
      double opt_s = t_opt.ElapsedSeconds();
      (void)opt;

      Timer t_prox;
      auto prox = ProxSummarize(w.polys, forest, bound);
      double prox_s = t_prox.ElapsedSeconds();

      std::printf("%-16s %12zu %10.4f %10.4f %14llu%s\n", w.name.c_str(),
                  bound, opt_s, prox_s,
                  prox.ok() ? static_cast<unsigned long long>(
                                  prox->oracle_calls)
                            : 0ull,
                  prox.ok() ? "" : " (budget exceeded)");
    }
  }
}

}  // namespace
}  // namespace provabs::bench

int main() {
  provabs::bench::Run();
  return 0;
}
