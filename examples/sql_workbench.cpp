/// SQL workbench: runs the paper's §1 query *literally as SQL* through the
/// bundled parser/planner, attaches the provenance parameterization via the
/// hook, compresses, and serializes the artifacts an analyst would receive.

#include <cstdio>

#include "algo/optimal_single_tree.h"
#include "core/valuation.h"
#include "io/serializer.h"
#include "sql/planner.h"
#include "workload/telephony.h"

int main() {
  using namespace provabs;

  VariableTable vars;
  RunningExample example = MakeRunningExample(vars);

  // The exact query text from Example 1 of the paper.
  const char* kQuery =
      "SELECT Zip, SUM(Calls.Dur * Plans.Price) "
      "FROM Calls, Cust, Plans "
      "WHERE Cust.Plan = Plans.Plan AND Cust.ID = Calls.CID "
      "AND Calls.Mo = Plans.Mo "
      "GROUP BY Cust.Zip";

  // Parameterization (§4.2: "where to place variables"): a per-plan
  // variable and a per-month variable on every contribution.
  const VariableId plan_var[] = {example.p1, example.f1, example.b1,
                                 example.y1, example.v,  example.e,
                                 example.b2};
  sql::PlanOptions options;
  options.parameters = [&](const Row& row, const Schema& schema)
      -> std::vector<VariableId> {
    int64_t plan = AsInt(row[schema.IndexOf("Cust.Plan")]);
    int64_t mo = AsInt(row[schema.IndexOf("Calls.Mo")]);
    return {plan_var[plan], mo == 1 ? example.m1 : example.m3};
  };

  auto result = sql::ExecuteSql(kQuery, example.db, options);
  if (!result.ok()) {
    std::printf("query failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  PolynomialSet provenance = result->ToPolynomialSet();
  std::printf("SQL query returned %zu groups; provenance:\n",
              result->row_count());
  for (size_t i = 0; i < result->row_count(); ++i) {
    std::printf("  Zip %s: %s\n",
                ValueToString(result->rows()[i][0]).c_str(),
                result->annotations()[i].ToString(vars).c_str());
  }

  // Compress with the Figure 2 tree and serialize the analyst bundle.
  AbstractionForest forest;
  auto pruned = MakeFigure2PlansTree(vars).PruneToPolynomials(provenance);
  if (!pruned.ok()) return 1;
  forest.AddTree(std::move(pruned).value());
  auto compressed = OptimalSingleTree(provenance, forest, 0, 9);
  if (!compressed.ok()) return 1;
  PolynomialSet abstracted = compressed->vvs.Apply(forest, provenance);

  std::string polys_buf = SerializePolynomialSet(abstracted, vars);
  std::string forest_buf = SerializeForest(forest, vars);
  std::string vvs_buf = SerializeVvs(compressed->vvs, forest, vars);
  std::printf(
      "\nAnalyst bundle: %zu B provenance + %zu B forest + %zu B VVS "
      "(raw provenance would be %zu B)\n",
      polys_buf.size(), forest_buf.size(), vvs_buf.size(),
      SerializePolynomialSet(provenance, vars).size());

  // What-if on the shipped bundle.
  VariableTable analyst;
  auto shipped = DeserializePolynomialSet(polys_buf, analyst);
  if (!shipped.ok()) return 1;
  Valuation scenario;
  scenario.Set(analyst.Find("m3"), 0.8);
  std::printf("\nScenario (March -20%%) on the shipped bundle:\n");
  for (const Polynomial& p : shipped->polynomials()) {
    std::printf("  revenue = %.2f\n", scenario.Evaluate(p));
  }
  return 0;
}
