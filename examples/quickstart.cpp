/// Quickstart: the paper's running example end to end in ~80 lines.
///
///  1. Build the telephony database fragment of Figure 1.
///  2. Run the revenue-per-zip query with provenance parameterized by plan
///     and month (Examples 1-2).
///  3. Ask a what-if question directly against the provenance.
///  4. Compress the provenance with the optimal single-tree algorithm
///     (Algorithm 1) under a monomial budget.
///  5. Ask the same (group-uniform) what-if question against the compressed
///     provenance — same answer, fewer monomials.

#include <cstdio>

#include "algo/optimal_single_tree.h"
#include "core/valuation.h"
#include "workload/telephony.h"

int main() {
  using namespace provabs;

  // 1. Figure 1's database fragment and its provenance variables.
  VariableTable vars;
  RunningExample example = MakeRunningExample(vars);

  // 2. Provenance-aware query evaluation: one polynomial per zip code.
  PolynomialSet provenance = RunRunningExampleQuery(example);
  std::printf("Provenance: %zu polynomials, %zu monomials, %zu variables\n",
              provenance.count(), provenance.SizeM(), provenance.SizeV());
  for (const Polynomial& p : provenance.polynomials()) {
    std::printf("  %s\n", p.ToString(vars).c_str());
  }

  // 3. Hypothetical reasoning without re-running the query:
  //    "what if March prices drop by 20%?"
  Valuation march_discount;
  march_discount.Set(example.m3, 0.8);
  std::printf("\nScenario: March prices x0.8\n");
  for (const Polynomial& p : provenance.polynomials()) {
    std::printf("  revenue = %.2f\n", march_discount.Evaluate(p));
  }

  // 4. Compress using the Figure 2 plans abstraction tree with a budget of
  //    9 monomials (Example 13).
  AbstractionForest forest;
  auto pruned = MakeFigure2PlansTree(vars).PruneToPolynomials(provenance);
  if (!pruned.ok()) {
    std::printf("pruning failed: %s\n", pruned.status().ToString().c_str());
    return 1;
  }
  forest.AddTree(std::move(pruned).value());

  auto result = OptimalSingleTree(provenance, forest, /*tree_index=*/0,
                                  /*bound_b=*/9);
  if (!result.ok()) {
    std::printf("compression failed: %s\n",
                result.status().ToString().c_str());
    return 1;
  }
  std::printf("\nOptimal abstraction for B=9: %s\n",
              result->vvs.ToString(forest, vars).c_str());
  std::printf("  monomial loss %zu, variable loss %zu\n",
              result->loss.monomial_loss, result->loss.variable_loss);

  PolynomialSet compressed = result->vvs.Apply(forest, provenance);
  std::printf("Compressed provenance (%zu monomials):\n",
              compressed.SizeM());
  for (const Polynomial& p : compressed.polynomials()) {
    std::printf("  %s\n", p.ToString(vars).c_str());
  }

  // 5. The same March scenario evaluates identically on the compressed
  //    provenance (it does not touch grouped plan variables).
  std::printf("\nScenario on compressed provenance: March prices x0.8\n");
  for (const Polynomial& p : compressed.polynomials()) {
    std::printf("  revenue = %.2f\n", march_discount.Evaluate(p));
  }
  return 0;
}
