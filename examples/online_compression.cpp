/// Online compression (§6 of the paper, implemented in src/online/):
/// instead of materializing the full provenance and compressing offline,
/// choose the abstraction from a small sample of the database, extrapolate
/// the full provenance size to adapt the bound, then evaluate the full
/// query directly over the pre-grouped variable space. Compares the online
/// pipeline against the offline (full-materialization) route.

#include <cstdio>

#include "algo/optimal_single_tree.h"
#include "common/timer.h"
#include "online/online_compressor.h"
#include "workload/telephony.h"
#include "workload/tree_gen.h"

int main() {
  using namespace provabs;

  TelephonyConfig config;
  config.num_customers = 8000;
  config.num_plans = 128;
  config.num_months = 12;
  config.num_zip_codes = 60;
  Rng rng(config.seed);

  VariableTable vars;
  TelephonyVars tv = MakeTelephonyVars(vars, config);
  Database db = GenerateTelephony(config, rng);
  std::printf("Database: %zu tuples\n", db.TotalRows());

  AbstractionForest forest;
  forest.AddTree(BuildUniformTree(vars, tv.plan_vars, {8}, "fam_"));

  ProvenanceQuery query = [&](const Database& d) {
    return RunTelephonyQuery(d, tv);
  };

  // --- Offline route: full provenance, then Algorithm 1. ---------------
  Timer t_offline;
  PolynomialSet full = query(db);
  const size_t bound = full.SizeM() / 3;
  auto offline = OptimalSingleTree(full, forest, 0, bound);
  double offline_s = t_offline.ElapsedSeconds();
  if (!offline.ok()) {
    std::printf("offline infeasible at B=%zu (%s)\n", bound,
                offline.status().ToString().c_str());
  } else {
    PolynomialSet compressed = offline->vvs.Apply(forest, full);
    std::printf(
        "Offline: |P|_M %zu -> %zu, VL %zu, total %.3fs "
        "(materializes the full provenance first)\n",
        full.SizeM(), compressed.SizeM(), offline->loss.variable_loss,
        offline_s);
  }

  // --- Online route: sample -> choose VVS -> grouped evaluation. -------
  OnlineOptions options;
  options.sample_rates = {0.02, 0.05, 0.1};
  options.sampled_tables = {"Calls"};  // Fact table only (§6 heuristic).
  Timer t_online;
  auto online = CompressOnline(db, query, forest, bound, options);
  double online_s = t_online.ElapsedSeconds();
  if (!online.ok()) {
    std::printf("online failed: %s\n", online.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "Online : sample |P|_M %zu, estimated full %zu (actual %zu),\n"
      "         adapted bound %zu, result %zu monomials, bound %s, %.3fs\n",
      online->sample_size_m, online->estimated_full_size_m,
      online->actual_full_size_m, online->adapted_bound,
      online->compressed.SizeM(), online->met_bound ? "met" : "missed",
      online_s);
  std::printf(
      "Note: the online route never holds more than max(sample, grouped)\n"
      "monomials in memory; the offline route peaks at the full %zu.\n",
      online->actual_full_size_m);
  return 0;
}
