/// Telephony what-if analysis at scale: generates a synthetic telephony
/// company database (§4.2 benchmark), computes provenance for the revenue
/// query, compresses it with the greedy multi-tree algorithm over plan-type
/// and quarter abstraction trees, and runs a batch of analyst scenarios on
/// the compressed provenance, reporting the evaluation-time saving.

#include <cstdio>

#include <unordered_set>

#include "abstraction/cut_counter.h"
#include "algo/greedy_multi_tree.h"
#include "common/timer.h"
#include "core/valuation.h"
#include "workload/telephony.h"
#include "workload/tree_gen.h"

int main() {
  using namespace provabs;

  TelephonyConfig config;
  config.num_customers = 5000;
  config.num_plans = 128;
  config.num_months = 12;
  config.num_zip_codes = 40;
  Rng rng(config.seed);

  VariableTable vars;
  TelephonyVars tv = MakeTelephonyVars(vars, config);
  Database db = GenerateTelephony(config, rng);
  std::printf("Database: %zu tuples\n", db.TotalRows());

  Timer t_query;
  PolynomialSet provenance = RunTelephonyQuery(db, tv);
  std::printf("Provenance: %zu polynomials, %zu monomials (%.2fs)\n",
              provenance.count(), provenance.SizeM(),
              t_query.ElapsedSeconds());

  // Plans are grouped by "plan family" (8 families of 16), months by
  // quarter — the abstractions an analyst would accept (Example 3).
  AbstractionForest forest;
  forest.AddTree(BuildUniformTree(vars, tv.plan_vars, {8}, "family_"));
  forest.AddTree(MakeFigure3MonthsTree(vars, 12));
  std::printf("Abstraction forest: %zu trees, %.0f x %.0f cuts\n",
              forest.tree_count(), CountCutsApprox(forest.tree(0)),
              CountCutsApprox(forest.tree(1)));

  const size_t bound = provenance.SizeM() / 4;
  Timer t_compress;
  auto result = GreedyMultiTree(provenance, forest, bound);
  if (!result.ok()) {
    std::printf("compression failed: %s\n",
                result.status().ToString().c_str());
    return 1;
  }
  PolynomialSet compressed = result->vvs.Apply(forest, provenance);
  std::printf(
      "Greedy compression to B=%zu: %zu -> %zu monomials, "
      "%zu variables lost (%.2fs)%s\n",
      bound, provenance.SizeM(), compressed.SizeM(),
      result->loss.variable_loss, t_compress.ElapsedSeconds(),
      result->adequate ? "" : " [bound unreachable; best effort]");

  // Analyst scenario batch. After abstraction, scenarios are expressed at
  // the granularity the abstraction kept: one factor per chosen group
  // (e.g. per quarter, per plan family). The substitution map tells us the
  // group of every original variable, so the same scenario can be applied
  // to the raw provenance for a fair comparison.
  auto subst = result->vvs.SubstitutionMap(forest);
  std::vector<VariableId> representatives;
  {
    std::unordered_set<VariableId> seen;
    for (const auto& [leaf, rep] : subst) {
      if (seen.insert(rep).second) representatives.push_back(rep);
    }
  }
  const int kScenarios = 200;

  auto run_batch = [&](const PolynomialSet& polys, double& sum) {
    Rng scen_rng(7);
    Timer timer;
    for (int s = 0; s < kScenarios; ++s) {
      Valuation val;
      for (VariableId rep : representatives) {
        val.Set(rep, scen_rng.UniformReal(0.7, 1.3));
      }
      // Propagate the group factor to the original leaf variables so the
      // scenario is well-defined on the uncompressed provenance too.
      for (const auto& [leaf, rep] : subst) {
        val.Set(leaf, val.Get(rep));
      }
      for (const Polynomial& p : polys.polynomials()) {
        sum += val.Evaluate(p);
      }
    }
    return timer.ElapsedSeconds();
  };

  double orig_sum = 0;
  double orig_time = run_batch(provenance, orig_sum);
  double compr_sum = 0;
  double compr_time = run_batch(compressed, compr_sum);

  std::printf("%d scenarios: original %.3fs, compressed %.3fs (%.1f%% "
              "faster)\n",
              kScenarios, orig_time, compr_time,
              100.0 * (orig_time - compr_time) / orig_time);
  std::printf("Answer drift check: |%.2f - %.2f| = %.6f\n", orig_sum,
              compr_sum, orig_sum - compr_sum);
  return 0;
}
