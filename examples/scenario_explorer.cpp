/// Scenario explorer: demonstrates the semiring genericity of the
/// provenance model (§2.1). The same provenance polynomials answer
///  - numeric what-if questions (real semiring),
///  - tuple-existence questions (boolean semiring: "does zip 10001 still
///    produce revenue if the Standard plans are discontinued?"),
///  - derivation counting (counting semiring),
/// and abstraction applies uniformly because the compression algorithms
/// never interpret + and ·.

#include <cstdio>

#include <unordered_map>

#include "algo/optimal_single_tree.h"
#include "core/semiring.h"
#include "core/valuation.h"
#include "workload/telephony.h"

int main() {
  using namespace provabs;

  VariableTable vars;
  RunningExample example = MakeRunningExample(vars);
  PolynomialSet provenance = RunRunningExampleQuery(example);

  std::printf("Provenance polynomials:\n");
  for (const Polynomial& p : provenance.polynomials()) {
    std::printf("  %s\n", p.ToString(vars).c_str());
  }

  // --- Real semiring: numeric what-if. --------------------------------
  std::printf("\n[real] business plans +10%%, youth plans -50%%:\n");
  Valuation scenario;
  scenario.Set(example.b1, 1.1);
  scenario.Set(example.b2, 1.1);
  scenario.Set(example.e, 1.1);
  scenario.Set(example.y1, 0.5);
  for (const Polynomial& p : provenance.polynomials()) {
    std::printf("  revenue = %.2f\n", scenario.Evaluate(p));
  }

  // --- Boolean semiring: existence under tuple deletion. ---------------
  std::printf("\n[bool] drop plan A (p1) and family plans (f1): does each "
              "zip still have revenue?\n");
  std::unordered_map<VariableId, bool> exists;
  exists[example.p1] = false;
  exists[example.f1] = false;
  for (const Polynomial& p : provenance.polynomials()) {
    std::printf("  %s\n",
                EvaluateOver<BooleanSemiring>(p, exists) ? "yes" : "no");
  }

  // --- Counting semiring: number of derivations. -----------------------
  std::printf("\n[count] derivations per zip (all tuples multiplicity 1):\n");
  std::unordered_map<VariableId, int64_t> ones;
  for (const Polynomial& p : provenance.polynomials()) {
    // With every variable at 1 and coefficients ignored via multiplicity
    // counting, we simply count monomials weighted by coefficient 1 -- use
    // a copy with unit coefficients.
    std::vector<Monomial> unit_terms;
    for (const Monomial& m : p.monomials()) {
      unit_terms.emplace_back(1.0, m.factors());
    }
    Polynomial unit = Polynomial::FromMonomials(std::move(unit_terms));
    std::printf("  %lld derivations\n",
                static_cast<long long>(
                    EvaluateOver<CountingSemiring>(unit, ones)));
  }

  // --- Abstraction composes with every interpretation. -----------------
  AbstractionForest forest;
  auto pruned = MakeFigure2PlansTree(vars).PruneToPolynomials(provenance);
  if (!pruned.ok()) return 1;
  forest.AddTree(std::move(pruned).value());
  auto result = OptimalSingleTree(provenance, forest, 0, 6);
  if (!result.ok()) {
    std::printf("\ncompression: %s\n", result.status().ToString().c_str());
    return 1;
  }
  PolynomialSet compressed = result->vvs.Apply(forest, provenance);
  std::printf("\nAfter compression to %zu monomials (%s):\n",
              compressed.SizeM(),
              result->vvs.ToString(forest, vars).c_str());

  // Boolean question at the abstraction's granularity: discontinue the
  // whole Business group.
  VariableId business = vars.Find("Business");
  std::unordered_map<VariableId, bool> drop_business;
  if (business != kInvalidVariable) drop_business[business] = false;
  for (const Polynomial& p : compressed.polynomials()) {
    std::printf("  [bool, no Business] zip alive: %s\n",
                EvaluateOver<BooleanSemiring>(p, drop_business) ? "yes"
                                                                : "no");
  }
  return 0;
}
