/// TPC-H provenance compression: generates the synthetic TPC-H database,
/// runs the three provenance-parameterized queries of §4.2 (Q1, Q5, Q10),
/// and compares all four compression algorithms — Optimal (single tree),
/// Greedy, Brute-Force (when the cut space is small), and the Prox
/// competitor — on the supplier abstraction tree.

#include <cstdio>

#include "abstraction/cut_counter.h"
#include "algo/brute_force.h"
#include "algo/greedy_multi_tree.h"
#include "algo/optimal_single_tree.h"
#include "algo/prox_summarizer.h"
#include "common/timer.h"
#include "workload/tpch.h"
#include "workload/tree_gen.h"

int main() {
  using namespace provabs;

  TpchConfig config;
  config.scale_factor = 0.25;
  Rng rng(config.seed);
  Database db = GenerateTpch(config, rng);
  std::printf("TPC-H database: %zu tuples (scale factor %.2f)\n",
              db.TotalRows(), config.scale_factor);

  VariableTable vars;
  TpchVars tv = MakeTpchVars(vars, 128);

  struct QuerySpec {
    TpchQuery query;
    const char* name;
  };
  const QuerySpec queries[] = {{TpchQuery::kQ1, "Q1"},
                               {TpchQuery::kQ5, "Q5"},
                               {TpchQuery::kQ10, "Q10"}};

  for (const QuerySpec& spec : queries) {
    PolynomialSet polys = RunTpchQuery(spec.query, db, tv);
    std::printf("\n%s: %zu polynomials, %zu monomials, %zu variables\n",
                spec.name, polys.count(), polys.SizeM(), polys.SizeV());

    // 2-level, 8-fanout supplier tree (Table 2 type 1).
    AbstractionForest forest;
    forest.AddTree(BuildUniformTree(vars, tv.supplier_vars, {8},
                                    std::string(spec.name) + "_"));

    // Target half of the achievable compression.
    LossReport max_loss = ComputeLossNaive(
        polys, forest, ValidVariableSet::AllRoots(forest));
    size_t bound = polys.SizeM() - max_loss.monomial_loss / 2;
    std::printf("  max compressible: %zu monomials; bound B=%zu\n",
                max_loss.monomial_loss, bound);

    {
      Timer t;
      auto r = OptimalSingleTree(polys, forest, 0, bound);
      if (r.ok()) {
        std::printf("  Optimal : ML=%-6zu VL=%-4zu  %.4fs\n",
                    r->loss.monomial_loss, r->loss.variable_loss,
                    t.ElapsedSeconds());
      } else {
        std::printf("  Optimal : %s\n", r.status().ToString().c_str());
      }
    }
    {
      Timer t;
      auto r = GreedyMultiTree(polys, forest, bound);
      if (r.ok()) {
        std::printf("  Greedy  : ML=%-6zu VL=%-4zu  %.4fs%s\n",
                    r->loss.monomial_loss, r->loss.variable_loss,
                    t.ElapsedSeconds(), r->adequate ? "" : " (partial)");
      }
    }
    {
      BruteForceOptions opts;
      opts.max_cuts = 2000;
      Timer t;
      auto r = BruteForce(polys, forest, bound, opts);
      if (r.ok()) {
        std::printf("  Brute   : ML=%-6zu VL=%-4zu  %.4fs\n",
                    r->loss.monomial_loss, r->loss.variable_loss,
                    t.ElapsedSeconds());
      } else {
        std::printf("  Brute   : skipped (%s)\n",
                    r.status().ToString().c_str());
      }
    }
    {
      ProxOptions opts;
      opts.max_oracle_calls = 50'000'000;
      Timer t;
      auto r = ProxSummarize(polys, forest, bound, opts);
      if (r.ok()) {
        std::printf("  Prox    : ML=%-6zu VL=%-4zu  %.4fs (%llu oracle "
                    "calls)\n",
                    r->loss.monomial_loss, r->loss.variable_loss,
                    t.ElapsedSeconds(),
                    static_cast<unsigned long long>(r->oracle_calls));
      } else {
        std::printf("  Prox    : %s\n", r.status().ToString().c_str());
      }
    }
  }
  return 0;
}
